#!/usr/bin/env python3
"""Check the markdown docs for broken relative links and anchors.

Scans ``docs/*.md``, ``README.md`` and ``ROADMAP.md`` for inline markdown
links. External links (``http(s)://``) are not fetched — CI must not
depend on the network — but every relative link must point at an existing
file, and every ``#fragment`` into a markdown file must match one of its
headings (GitHub anchor style).

Usage:
    python scripts/check_docs.py          # exit 1 on any broken link

No repro imports — runs on a bare CPython with nothing installed (the CI
``docs`` job uses it before any dependency install).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files scanned for links.
SOURCES = [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md",
           *sorted((REPO_ROOT / "docs").glob("*.md"))]

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_anchor(heading: str) -> str:
    """The anchor GitHub generates for a heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    text = path.read_text(encoding="utf-8")
    return {github_anchor(match) for match in _HEADING.findall(text)}


def check_file(source: Path) -> list[str]:
    errors = []
    text = source.read_text(encoding="utf-8")
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (source.parent / path_part).resolve() if path_part \
            else source
        if not resolved.exists():
            errors.append(f"{source.relative_to(REPO_ROOT)}: broken link "
                          f"-> {target} ({path_part} does not exist)")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                errors.append(
                    f"{source.relative_to(REPO_ROOT)}: dead anchor "
                    f"-> {target} (no heading '#{fragment}' in "
                    f"{resolved.name})")
    return errors


def main() -> int:
    missing = [str(p) for p in SOURCES if not p.exists()]
    if missing:
        print(f"missing doc file(s): {missing}", file=sys.stderr)
        return 1
    errors = [error for source in SOURCES for error in check_file(source)]
    for error in errors:
        print(f"BROKEN  {error}")
    checked = len(SOURCES)
    if errors:
        print(f"{len(errors)} broken link(s) across {checked} files")
        return 1
    print(f"docs link check OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
