"""Fading channels: determinism across shard counts and engine backends.

A fading spec draws its channel gains from seeded per-UE streams, so two
runs of the same spec must be bit-identical — per execution path.  The
sharded runtime samples those streams in per-shard simulators and the
vectorized backend batches the slot clock differently, so *cross*-path
bit-identity is explicitly not promised for fading (the fuzzer's
sharding/backend suites degrade to determinism checks there); these
tests pin exactly that contract for every runnable backend at
``--shards 1`` (single loop) and ``--shards 2``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.fuzz import flows_identical
from repro.experiments.scenario import run_scenario
from repro.experiments.sharded import run_scenario_sharded, sharding_blockers
from repro.experiments.spec import (CellSpec, EngineSpec, ScenarioSpec,
                                    ShardingSpec, UeSpec)
from repro.sim.backends import available_backends
from repro.workloads.flows import FlowSpec

BACKENDS = available_backends()


def _fading_spec(backend: str, profile: str = "pedestrian") -> ScenarioSpec:
    return ScenarioSpec(
        name=f"fading-{backend}", duration_s=0.3, num_ues=0, seed=77,
        channel_profile=profile,
        engine=EngineSpec(backend=backend),
        cells=[CellSpec(cell_id=0), CellSpec(cell_id=1)],
        ues=[UeSpec(ue_id=0, cell_id=0), UeSpec(ue_id=1, cell_id=1),
             UeSpec(ue_id=2, cell_id=0)],
        flows=[FlowSpec(flow_id=0, ue_id=0, cc_name="prague"),
               FlowSpec(flow_id=1, ue_id=1, cc_name="cubic",
                        start_time=0.02),
               FlowSpec(flow_id=2, ue_id=2, cc_name="prague",
                        start_time=0.01)],
        sharding=ShardingSpec(mode="auto", shards=2))


def _run(spec: ScenarioSpec, shards: int):
    if shards <= 1:
        return run_scenario(
            dataclasses.replace(spec, sharding=ShardingSpec(mode="off")))
    return run_scenario_sharded(spec, shards=shards, inprocess=True)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("shards", [1, 2])
def test_fading_repeat_runs_bit_identical(backend, shards):
    spec = _fading_spec(backend)
    assert sharding_blockers(spec) == []
    first = _run(spec, shards)
    second = _run(spec, shards)
    if shards > 1:
        assert not first.sharding_stats.get("fallback")
    assert flows_identical(first, second)
    assert first.per_ue_throughput == second.per_ue_throughput
    assert any(flow.goodput_bytes_per_s > 0 for flow in first.flows)


@pytest.mark.parametrize("backend", BACKENDS)
def test_vehicular_profile_also_deterministic(backend):
    """The faster-varying profile exercises more channel redraws."""
    spec = _fading_spec(backend, profile="vehicular")
    first = _run(spec, 2)
    second = _run(spec, 2)
    assert flows_identical(first, second)
