"""Tests for the window-based congestion-control senders.

Each sender is exercised against a simple in-memory path: data packets go to
a TCP receiver after a fixed one-way delay, ACKs come back after the same
delay.  The bottleneck is emulated with a serialising Link so that queueing
and marking behaviour can be controlled precisely.
"""

from __future__ import annotations

import pytest

from repro.aqm.step import StepMarker
from repro.cc.bbr import BbrSender
from repro.cc.bbrv2 import Bbr2Sender
from repro.cc.cubic import CubicSender
from repro.cc.factory import CC_REGISTRY, is_l4s_algorithm, make_receiver, make_sender
from repro.cc.prague import PragueSender
from repro.cc.receiver import TcpReceiver
from repro.cc.reno import RenoSender
from repro.net.ecn import ECN
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.pipe import DelayPipe
from repro.units import mbps, ms


class LoopbackPath:
    """Server -> (link with optional AQM) -> delay -> receiver -> delay -> server."""

    def __init__(self, sim, sender_cls, rtt=0.04, rate_mbps=20.0, aqm=None,
                 flow_bytes=None, five_tuple=None):
        from repro.net.addresses import FiveTuple
        self.sim = sim
        five_tuple = five_tuple or FiveTuple("10.0.0.1", 443, "10.1.0.2",
                                             50_000, "tcp")
        self.link = Link(sim, rate=mbps(rate_mbps), aqm=aqm,
                         name="bottleneck")
        forward_delay = DelayPipe(sim, rtt / 2)
        self.sender = sender_cls(sim, 0, five_tuple, path=self.link,
                                 flow_bytes=flow_bytes)
        reverse = DelayPipe(sim, rtt / 2, sink=_Call(self.sender.receive))
        self.receiver = TcpReceiver(sim, 0, send_feedback=reverse.receive,
                                    accecn=self.sender.uses_accecn)
        forward_delay.sink = _Call(self.receiver.receive)
        self.link.sink = forward_delay

    def run(self, duration):
        self.sim.schedule_at(0.0, self.sender.start)
        self.sim.run(until=duration)
        return self.sender


class _Call:
    def __init__(self, fn):
        self._fn = fn

    def receive(self, packet: Packet) -> None:
        self._fn(packet)


class _BlackholePath:
    """A sink that delivers nothing: every segment vanishes in flight."""

    def receive(self, packet: Packet) -> None:
        pass


class TestRtoTimer:
    def test_rto_fires_when_acks_stop(self, sim):
        from repro.net.addresses import FiveTuple
        sender = RenoSender(sim, 0, FiveTuple("10.0.0.1", 443, "10.1.0.2",
                                              50_000, "tcp"),
                            path=_BlackholePath())
        sender.start()
        sim.run(until=5.0)
        assert sender.stats.timeouts >= 2  # initial 1 s RTO, then backoff

    def test_shrunk_rto_reschedules_standing_timer(self, sim):
        """When the measured RTO drops below the armed horizon (initial 1 s
        estimate, or after exponential backoff), the timeout must fire at the
        new, earlier deadline -- not at the stale event's."""
        from repro.net.addresses import FiveTuple
        from repro.net.packet import make_ack_packet, make_data_packet
        five_tuple = FiveTuple("10.0.0.1", 443, "10.1.0.2", 50_000, "tcp")
        sender = RenoSender(sim, 0, five_tuple, path=_BlackholePath())
        sender.start()  # arms the timer with the initial rto = 1.0 s

        def ack_first_segment():
            data = make_data_packet(0, five_tuple, 0, sender.mss, ECN.ECT0,
                                    now=0.0)
            sender.receive(make_ack_packet(data, ack_seq=sender.mss,
                                           now=sim.now))

        # One ACK with a 10 ms RTT at t=10ms drops rto to its 200 ms floor;
        # afterwards the path stays black-holed.
        sim.schedule_at(0.010, ack_first_segment)
        sim.run(until=0.3)
        # The timeout fired at ~0.21 s (ACK time + 200 ms floor), well before
        # the stale 1.0 s horizon, and backoff then doubled the 0.2 s rto.
        assert sender.stats.timeouts == 1
        assert sender.rto == pytest.approx(0.4)

    def test_pacing_deferred_burst_after_idle_arms_rto(self, sim):
        """An ACK that empties the pipe while pacing defers the next burst
        leaves no deadline armed; the deferred send itself must re-arm the
        RTO or a lost burst would stall the flow forever."""
        from repro.net.addresses import FiveTuple
        from repro.net.packet import make_ack_packet, make_data_packet
        five_tuple = FiveTuple("10.0.0.1", 443, "10.1.0.2", 50_000, "tcp")
        sender = RenoSender(sim, 0, five_tuple, path=_BlackholePath())
        sender.start()
        sender.srtt = 0.05  # enable pacing
        sender._next_send_time = sim.now + 0.01  # defer the next burst
        data = make_data_packet(0, five_tuple, 0, sender.mss, ECN.ECT0, 0.0)
        sender.receive(make_ack_packet(data, ack_seq=sender.snd_nxt,
                                       now=sim.now))
        assert sender.inflight == 0
        assert sender._rto_deadline is None
        assert sender._pacing_timer is not None
        sim.run(until=0.02)  # pacing timer fires and transmits
        assert sender.inflight > 0
        assert sender._rto_deadline is not None


class TestGenericWindowMachinery:
    def test_sender_fills_the_pipe(self, sim):
        sender = LoopbackPath(sim, PragueSender, rate_mbps=10).run(3.0)
        goodput_mbps = sender.stats.acked_bytes * 8 / 1e6 / 3.0
        assert goodput_mbps > 7.0

    def test_finite_flow_completes(self, sim):
        path = LoopbackPath(sim, CubicSender, rate_mbps=20,
                            flow_bytes=200_000)
        sender = path.run(5.0)
        assert sender.completed
        assert sender.stats.completion_time < 2.0

    def test_rtt_estimate_close_to_configured(self, sim):
        # A small finite flow stays application-limited, so the measured RTT
        # is the configured propagation RTT rather than self-induced queueing.
        path = LoopbackPath(sim, RenoSender, rtt=0.05, rate_mbps=50,
                            flow_bytes=60_000)
        sender = path.run(2.0)
        assert sender.srtt == pytest.approx(0.05, abs=0.02)

    def test_stop_halts_transmission(self, sim):
        path = LoopbackPath(sim, PragueSender, rate_mbps=10)
        sim.schedule_at(1.0, path.sender.stop)
        path.run(3.0)
        sent_at_stop = path.sender.stats.sent_packets
        sim.run(until=3.5)
        assert path.sender.stats.sent_packets == sent_at_stop

    def test_inflight_never_exceeds_window_plus_one_segment(self, sim):
        path = LoopbackPath(sim, RenoSender, rate_mbps=5)
        violations = []
        original = path.sender._send_segment

        def checked(seq, payload, retransmission=False):
            if path.sender.inflight > path.sender._window_limit() + path.sender.mss:
                violations.append(path.sender.inflight)
            original(seq, payload, retransmission)

        path.sender._send_segment = checked
        path.run(2.0)
        assert not violations


class TestEcnResponses:
    def _run_with_marking(self, sim, sender_cls, threshold_ms=1.0):
        aqm = StepMarker(threshold=ms(threshold_ms))
        path = LoopbackPath(sim, sender_cls, rate_mbps=10, aqm=aqm)
        sender = path.run(4.0)
        return sender, aqm

    def test_prague_reacts_to_marks_with_low_queue(self, sim):
        sender, aqm = self._run_with_marking(sim, PragueSender)
        assert aqm.marked > 0
        assert sender.stats.congestion_events > 0
        # Prague holds cwnd near the BDP instead of filling the buffer.
        bdp = mbps(10) * 0.04
        assert sender.cwnd < 4 * bdp

    def test_prague_alpha_tracks_marking(self, sim):
        sender, _ = self._run_with_marking(sim, PragueSender)
        assert 0.0 < sender.alpha <= 1.0

    def test_cubic_cuts_on_classic_ecn_echo(self, sim):
        sender, aqm = self._run_with_marking(sim, CubicSender)
        assert sender.stats.congestion_events > 0

    def test_cubic_sets_cwr_after_reduction(self, sim):
        path = LoopbackPath(sim, CubicSender, rate_mbps=10,
                            aqm=StepMarker(threshold=ms(1)))
        original = path.sender._send_segment

        def spy(seq, payload, retransmission=False):
            original(seq, payload, retransmission)

        path.sender._send_segment = spy
        sender = path.run(4.0)
        # The receiver stops echoing ECE only after it sees CWR, so if CWR
        # were never sent the sender would keep reducing forever and starve.
        assert sender.stats.acked_bytes * 8 / 4.0 / 1e6 > 2.0

    def test_reno_halves_on_ecn(self, sim):
        sender, _ = self._run_with_marking(sim, RenoSender)
        assert sender.stats.congestion_events > 0

    def test_bbr_ignores_marks(self, sim):
        sender, aqm = self._run_with_marking(sim, BbrSender)
        assert aqm.marked > 0
        assert sender.stats.congestion_events == 0

    def test_bbr2_caps_inflight_on_marks(self, sim):
        sender, _ = self._run_with_marking(sim, Bbr2Sender)
        assert sender.stats.congestion_events > 0
        assert sender.inflight_hi is not None


class TestEcnCodepoints:
    def test_l4s_senders_use_ect1(self):
        assert PragueSender.ect_codepoint == ECN.ECT1
        assert Bbr2Sender.ect_codepoint == ECN.ECT1

    def test_classic_senders_use_ect0(self):
        assert CubicSender.ect_codepoint == ECN.ECT0
        assert RenoSender.ect_codepoint == ECN.ECT0
        assert BbrSender.ect_codepoint == ECN.ECT0


class TestFactory:
    def test_registry_contains_all_paper_algorithms(self):
        for name in ("prague", "cubic", "reno", "bbr", "bbr2", "scream",
                     "udp_prague"):
            assert name in CC_REGISTRY

    def test_is_l4s_algorithm(self):
        assert is_l4s_algorithm("prague")
        assert is_l4s_algorithm("bbr2")
        assert not is_l4s_algorithm("cubic")

    def test_unknown_name_raises(self, sim, five_tuple):
        with pytest.raises(KeyError):
            make_sender("vegas", sim, 0, five_tuple, path=None)
        with pytest.raises(KeyError):
            make_receiver("vegas", sim, 0, send_feedback=lambda p: None)

    def test_make_receiver_matches_accecn_capability(self, sim):
        prague_rx = make_receiver("prague", sim, 0, send_feedback=lambda p: None)
        cubic_rx = make_receiver("cubic", sim, 0, send_feedback=lambda p: None)
        assert prague_rx.accecn_enabled
        assert not cubic_rx.accecn_enabled
