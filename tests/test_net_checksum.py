"""Tests for the checksum helpers used by the marking datapath."""

from __future__ import annotations

import struct

from repro.net.checksum import (checksums_valid, incremental_checksum_update,
                                internet_checksum, ip_checksum_of,
                                ip_tos_word, mark_ce_with_checksum,
                                recompute_checksums, serialize_ip_header,
                                tcp_checksum_of, tcp_rewrite_words,
                                update_checksums_after_ack_rewrite,
                                verify_checksum)
from repro.net.ecn import ECN
from repro.net.packet import AccEcnCounters, make_ack_packet, make_data_packet


def test_internet_checksum_known_vector():
    # Classic RFC 1071 example: two words summing without carry.
    assert internet_checksum(b"\x00\x01\xf2\x03") == (~0xF204) & 0xFFFF


def test_checksum_detects_corruption():
    data = b"hello world!"
    checksum = internet_checksum(data)
    assert verify_checksum(data, checksum)
    assert not verify_checksum(b"hello worle!", checksum)


def test_odd_length_padding():
    assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")


def test_ip_header_changes_with_ecn(five_tuple):
    packet = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
    before = serialize_ip_header(packet)
    packet.ecn = ECN.CE
    after = serialize_ip_header(packet)
    assert before != after


def test_mark_ce_with_checksum_keeps_headers_consistent(five_tuple):
    packet = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
    recompute_checksums(packet)
    assert checksums_valid(packet)
    assert mark_ce_with_checksum(packet, by="aqm")
    # the helper refreshed the IP checksum after rewriting the ECN field
    assert packet.payload_info["ip_checksum"] == ip_checksum_of(packet)


def test_stale_checksum_detected_after_manual_rewrite(five_tuple):
    packet = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
    recompute_checksums(packet)
    packet.ecn = ECN.CE  # rewrite without recomputing
    assert not checksums_valid(packet)


def test_tcp_checksum_covers_accecn_fields(five_tuple):
    data = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
    ack = make_ack_packet(data, 100, 0.1, accecn=AccEcnCounters())
    before = tcp_checksum_of(ack)
    ack.accecn.ce_bytes = 999
    assert tcp_checksum_of(ack) != before


def test_checksum_matches_reference_word_loop():
    """The memoryview fast path equals the classic per-word RFC 1071 loop."""
    import random

    def reference(data: bytes) -> int:
        if len(data) % 2:
            data += b"\x00"
        total = 0
        for (word,) in struct.iter_unpack("!H", data):
            total += word
            total = (total & 0xFFFF) + (total >> 16)
        return (~total) & 0xFFFF

    rng = random.Random(1624)
    for _ in range(500):
        data = bytes(rng.randrange(256)
                     for _ in range(rng.randrange(1, 80)))
        assert internet_checksum(data) == reference(data)


def test_checksum_negative_zero_representations_compare_equal():
    """RFC 1624 §3: 0x0000 and 0xFFFF both encode a zero sum.  Incremental
    updates and full recomputes may land on different representatives (only
    reachable for an all-zero header), so comparisons must absorb it."""
    from repro.net.checksum import checksums_equal, incremental_checksum_update

    # Rewrite a two-word header to all-zero: the full sum of zeros is
    # 0xFFFF, the incremental route lands on 0x0000.
    words = (0x0000, 0xE055)
    checksum = internet_checksum(struct.pack("!2H", *words))
    updated = incremental_checksum_update(checksum, words, (0, 0))
    full = internet_checksum(b"\x00\x00\x00\x00")
    assert {updated, full} == {0x0000, 0xFFFF}
    assert checksums_equal(updated, full)
    assert checksums_equal(0x1234, 0x1234)
    assert not checksums_equal(0x1234, 0x1235)
    assert not checksums_equal(0x0000, 0x0001)


def test_incremental_update_matches_full_recompute(five_tuple):
    """RFC 1624: updating changed words equals re-summing the header."""
    packet = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
    before = ip_checksum_of(packet)
    old_word = ip_tos_word(packet)
    packet.ecn = ECN.CE
    assert incremental_checksum_update(
        before, (old_word,), (ip_tos_word(packet),)) == ip_checksum_of(packet)


def test_mark_ce_incremental_path_equals_full(five_tuple):
    """Marking a packet with a stored checksum updates it incrementally
    to exactly the value a full recompute would produce."""
    packet = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
    recompute_checksums(packet)
    assert mark_ce_with_checksum(packet, by="aqm")
    assert packet.payload_info["ip_checksum"] == ip_checksum_of(packet)
    assert checksums_valid(packet)


def test_ack_rewrite_incremental_equals_full(five_tuple):
    """Short-circuit rewrite keeps checksums exact, with or without a
    previously stored value, for both AccECN and ECE rewrites."""
    for precompute in (False, True):
        data = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
        ack = make_ack_packet(data, 100, 0.1, accecn=AccEcnCounters())
        if precompute:
            recompute_checksums(ack)
        old_words = tcp_rewrite_words(ack)
        ack.accecn.ce_packets = 17
        ack.accecn.ce_bytes = 17 * 1448
        ip_sum, tcp_sum = update_checksums_after_ack_rewrite(ack, old_words)
        assert tcp_sum == tcp_checksum_of(ack)
        assert ip_sum == ip_checksum_of(ack)
        assert checksums_valid(ack)

        data = make_data_packet(0, five_tuple, 0, 100, ECN.ECT0, 0.0)
        ack = make_ack_packet(data, 100, 0.1)
        if precompute:
            recompute_checksums(ack)
        old_words = tcp_rewrite_words(ack)
        ack.ece = True
        _ip_sum, tcp_sum = update_checksums_after_ack_rewrite(ack, old_words)
        assert tcp_sum == tcp_checksum_of(ack)
        assert checksums_valid(ack)


def test_tcp_checksum_covers_ece_flag(five_tuple):
    data = make_data_packet(0, five_tuple, 0, 100, ECN.ECT0, 0.0)
    ack = make_ack_packet(data, 100, 0.1)
    before = tcp_checksum_of(ack)
    ack.ece = True
    assert tcp_checksum_of(ack) != before
