"""Tests for the checksum helpers used by the marking datapath."""

from __future__ import annotations

from repro.net.checksum import (checksums_valid, internet_checksum,
                                ip_checksum_of, mark_ce_with_checksum,
                                recompute_checksums, serialize_ip_header,
                                tcp_checksum_of, verify_checksum)
from repro.net.ecn import ECN
from repro.net.packet import AccEcnCounters, make_ack_packet, make_data_packet


def test_internet_checksum_known_vector():
    # Classic RFC 1071 example: two words summing without carry.
    assert internet_checksum(b"\x00\x01\xf2\x03") == (~0xF204) & 0xFFFF


def test_checksum_detects_corruption():
    data = b"hello world!"
    checksum = internet_checksum(data)
    assert verify_checksum(data, checksum)
    assert not verify_checksum(b"hello worle!", checksum)


def test_odd_length_padding():
    assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")


def test_ip_header_changes_with_ecn(five_tuple):
    packet = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
    before = serialize_ip_header(packet)
    packet.ecn = ECN.CE
    after = serialize_ip_header(packet)
    assert before != after


def test_mark_ce_with_checksum_keeps_headers_consistent(five_tuple):
    packet = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
    recompute_checksums(packet)
    assert checksums_valid(packet)
    assert mark_ce_with_checksum(packet, by="aqm")
    # the helper refreshed the IP checksum after rewriting the ECN field
    assert packet.payload_info["ip_checksum"] == ip_checksum_of(packet)


def test_stale_checksum_detected_after_manual_rewrite(five_tuple):
    packet = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
    recompute_checksums(packet)
    packet.ecn = ECN.CE  # rewrite without recomputing
    assert not checksums_valid(packet)


def test_tcp_checksum_covers_accecn_fields(five_tuple):
    data = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
    ack = make_ack_packet(data, 100, 0.1, accecn=AccEcnCounters())
    before = tcp_checksum_of(ack)
    ack.accecn.ce_bytes = 999
    assert tcp_checksum_of(ack) != before


def test_tcp_checksum_covers_ece_flag(five_tuple):
    data = make_data_packet(0, five_tuple, 0, 100, ECN.ECT0, 0.0)
    ack = make_ack_packet(data, 100, 0.1)
    before = tcp_checksum_of(ack)
    ack.ece = True
    assert tcp_checksum_of(ack) != before
