"""Tests for the stable public facade (:mod:`repro.api`) and the canonical
schema-versioned result document it shares with the CLI and the service."""

from __future__ import annotations

import json

import pytest

import repro.api as api
from repro.experiments.results import (SUPPORTED_SCHEMA_VERSIONS,
                                       result_schema)


def _tiny_spec() -> api.ScenarioSpec:
    return api.ScenarioSpec(num_ues=1, duration_s=0.4, seed=3)


# --------------------------------------------------------------------- #
# load_spec resolves every spec-shaped input
# --------------------------------------------------------------------- #
class TestLoadSpec:
    def test_scenario_spec_passes_through(self):
        spec = _tiny_spec()
        assert api.load_spec(spec) is spec

    def test_preset_name(self):
        spec = api.load_spec("coupled-core")
        assert spec == api.make_preset("coupled-core")

    def test_dict(self):
        spec = api.load_spec({"num_ues": 2, "duration_s": 1.0})
        assert spec.num_ues == 2

    def test_json_text(self):
        spec = api.load_spec(_tiny_spec().to_json())
        assert spec == _tiny_spec()

    def test_file_path(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(_tiny_spec().to_json())
        assert api.load_spec(str(path)) == _tiny_spec()
        assert api.load_spec(path) == _tiny_spec()

    def test_unresolvable_string_lists_presets(self):
        with pytest.raises(ValueError, match="coupled-core"):
            api.load_spec("definitely-not-a-preset")

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            api.load_spec(42)

    def test_invalid_dict_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            api.load_spec({"num_uess": 3})


# --------------------------------------------------------------------- #
# run / run_document and the byte-identity of the document
# --------------------------------------------------------------------- #
class TestRun:
    def test_run_accepts_options_and_progress(self):
        snapshots = []
        result = api.run(_tiny_spec(), progress=snapshots.append)
        assert result.summary()["total_goodput_mbps"] > 0
        assert len(snapshots) >= 1
        times = [snapshot["time_s"] for snapshot in snapshots]
        assert times == sorted(times)
        assert all(snapshot["kind"] == "snapshot" for snapshot in snapshots)

    def test_progress_hook_does_not_perturb_the_document(self):
        plain = api.dump_document(api.result_document(api.run(_tiny_spec())))
        probed = api.dump_document(api.result_document(
            api.run(_tiny_spec(), progress=lambda snapshot: None)))
        assert plain == probed

    def test_identical_runs_serialize_identically(self):
        first = api.dump_document(api.run_document(_tiny_spec()))
        second = api.dump_document(api.run_document(_tiny_spec()))
        assert first == second

    def test_run_document_is_checked_and_versioned(self):
        document = api.run_document(_tiny_spec())
        assert api.check_document(document) is document
        assert document["schema_version"] == api.SCHEMA_VERSION
        assert json.loads(api.dump_document(document)) == document

    def test_runtime_options_flow_through(self):
        result = api.run(_tiny_spec(),
                         options=api.RuntimeOptions(engine="numpy"))
        assert result.config.engine.backend == "numpy"


# --------------------------------------------------------------------- #
# Sharded runs stream coarser per-window progress
# --------------------------------------------------------------------- #
class TestShardedProgress:
    def test_window_snapshots_from_inprocess_sharded_run(self):
        import dataclasses

        from repro.experiments.sharded import run_scenario_sharded

        base = api.make_preset("two-cell-imbalance")
        spec = dataclasses.replace(
            base, duration_s=1.0,
            ues=[dataclasses.replace(ue, channel_profile="static")
                 for ue in base.ues])
        snapshots = []
        result = run_scenario_sharded(spec, shards=2, inprocess=True,
                                      progress=snapshots.append)
        assert not result.sharding_stats.get("fallback")
        assert len(snapshots) >= 1
        assert all(snapshot["kind"] == "window" for snapshot in snapshots)
        times = [snapshot["time_s"] for snapshot in snapshots]
        assert times == sorted(times)
        assert times[-1] == pytest.approx(spec.duration_s)
        assert all(snapshot["shards"] == 2 for snapshot in snapshots)


# --------------------------------------------------------------------- #
# The document schema description cannot drift from the document
# --------------------------------------------------------------------- #
class TestResultSchema:
    def test_schema_required_keys_match_document(self):
        document = api.run_document(_tiny_spec())
        schema = result_schema()
        assert sorted(schema["required"]) == sorted(document)
        assert sorted(schema["properties"]) == sorted(document)

    def test_flow_schema_keys_match_flow_documents(self):
        document = api.run_document(_tiny_spec())
        flow_schema = result_schema()["properties"]["flows"]["items"]
        for flow in document["flows"]:
            assert sorted(flow_schema["required"]) == sorted(flow)

    def test_document_has_no_nan_and_sorted_keys(self):
        text = api.dump_document(api.run_document(_tiny_spec()))
        assert "NaN" not in text and "Infinity" not in text
        assert text.endswith("\n")


# --------------------------------------------------------------------- #
# check_document rejects what it cannot read, with guidance
# --------------------------------------------------------------------- #
class TestCheckDocument:
    def test_missing_version_rejected(self):
        with pytest.raises(ValueError, match="schema_version"):
            api.check_document({"summary": {}})

    def test_unsupported_version_rejected(self):
        future = max(SUPPORTED_SCHEMA_VERSIONS) + 1
        with pytest.raises(ValueError, match="not supported"):
            api.check_document({"schema_version": future})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            api.check_document([1, 2, 3])


# --------------------------------------------------------------------- #
# The sweep facade
# --------------------------------------------------------------------- #
def _square(cell: int) -> int:
    return cell * cell


def _seeded(cell: int, seed: int) -> tuple[int, int]:
    return cell, seed


class TestSweep:
    def test_results_in_input_order(self):
        assert api.sweep(_square, [3, 1, 2]) == [9, 1, 4]

    def test_master_seed_derives_per_cell_seeds(self):
        rows = api.sweep(_seeded, ["a", "b"], master_seed=7)
        assert [cell for cell, _ in rows] == ["a", "b"]
        seeds = [seed for _, seed in rows]
        assert len(set(seeds)) == 2
        assert rows == api.sweep(_seeded, ["a", "b"], master_seed=7)


# --------------------------------------------------------------------- #
# The facade exports what it promises
# --------------------------------------------------------------------- #
class TestSurface:
    def test_all_exports_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_serve_is_exported(self):
        assert callable(api.serve)
