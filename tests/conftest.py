"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net.addresses import FiveTuple
from repro.net.ecn import ECN
from repro.net.packet import make_data_packet
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture
def five_tuple() -> FiveTuple:
    """A canonical downlink five-tuple."""
    return FiveTuple("10.0.0.1", 443, "10.45.0.2", 50_000, "tcp")


def make_packet(five_tuple: FiveTuple, seq: int = 0, payload: int = 1400,
                ecn: ECN = ECN.ECT1, now: float = 0.0, flow_id: int = 0):
    """Convenience wrapper used across test modules."""
    return make_data_packet(flow_id, five_tuple, seq, payload, ecn, now)


@pytest.fixture
def packet_factory(five_tuple):
    """A factory building data packets on the canonical five-tuple."""
    def factory(seq: int = 0, payload: int = 1400, ecn: ECN = ECN.ECT1,
                now: float = 0.0, flow_id: int = 0):
        return make_packet(five_tuple, seq, payload, ecn, now, flow_id)
    return factory
