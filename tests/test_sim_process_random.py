"""Tests for periodic processes and named random streams."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.randomness import RandomStreams


class TestPeriodicProcess:
    def test_ticks_at_fixed_period(self):
        sim = Simulator()
        ticks = []
        PeriodicProcess(sim, 0.5, lambda: ticks.append(sim.now), start_at=0.5)
        sim.run(until=2.4)
        assert ticks == [0.5, 1.0, 1.5, 2.0]

    def test_stop_prevents_future_ticks(self):
        sim = Simulator()
        ticks = []
        process = PeriodicProcess(sim, 0.5, lambda: ticks.append(sim.now),
                                  start_at=0.5)
        sim.schedule(1.2, process.stop)
        sim.run(until=5.0)
        assert ticks == [0.5, 1.0]

    def test_zero_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicProcess(sim, 0.0, lambda: None)

    def test_tick_counter(self):
        sim = Simulator()
        process = PeriodicProcess(sim, 1.0, lambda: None, start_at=1.0)
        sim.run(until=3.5)
        assert process.ticks == 3

    def test_callback_can_stop_process(self):
        sim = Simulator()
        calls = []

        def callback():
            calls.append(sim.now)
            if len(calls) == 2:
                process.stop()

        process = PeriodicProcess(sim, 1.0, callback, start_at=1.0)
        sim.run(until=10.0)
        assert len(calls) == 2


class TestRandomStreams:
    def test_same_seed_and_name_reproduces_sequence(self):
        a = RandomStreams(7)
        b = RandomStreams(7)
        assert [a.uniform("x") for _ in range(5)] == \
            [b.uniform("x") for _ in range(5)]

    def test_different_names_are_independent(self):
        streams = RandomStreams(7)
        seq_x = [streams.uniform("x") for _ in range(5)]
        seq_y = [streams.uniform("y") for _ in range(5)]
        assert seq_x != seq_y

    def test_different_seeds_differ(self):
        assert RandomStreams(1).uniform("x") != RandomStreams(2).uniform("x")

    def test_bernoulli_extremes(self):
        streams = RandomStreams(3)
        assert streams.bernoulli("s", 0.0) is False
        assert streams.bernoulli("s", 1.0) is True

    def test_bernoulli_rate_roughly_matches_probability(self):
        streams = RandomStreams(3)
        hits = sum(streams.bernoulli("s", 0.3) for _ in range(2000))
        assert 450 <= hits <= 750

    def test_normal_with_zero_scale_returns_mean(self):
        streams = RandomStreams(3)
        assert streams.normal("n", loc=5.0, scale=0.0) == 5.0

    def test_exponential_mean_is_positive(self):
        streams = RandomStreams(3)
        samples = [streams.exponential("e", 2.0) for _ in range(500)]
        assert all(s >= 0 for s in samples)
        assert 1.5 < sum(samples) / len(samples) < 2.6

    def test_uniform_in_unit_interval(self):
        streams = RandomStreams(9)
        for _ in range(100):
            value = streams.uniform("u")
            assert 0.0 <= value < 1.0
