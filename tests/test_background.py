"""Tests for the vectorized background-UE population kernel.

Covers the population's coupling into the MAC (foreground contention), its
accuracy envelope against a fully simulated equivalent, the seed/determinism
contract (repeats and shard splits), the numpy guard and the promise that
pure-python scenarios never import the kernel.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.experiments.scenario import build_scenario, run_scenario
from repro.experiments.sharded import run_scenario_sharded
from repro.experiments.spec import (CellSpec, PopulationSpec, ScenarioSpec,
                                    UeSpec)
from repro.workloads.flows import FlowSpec

pytestmark = pytest.mark.filterwarnings("ignore")


def _aggregate_spec(**population) -> ScenarioSpec:
    defaults = dict(n_background=4, workload="bulk", cc_mix={"cubic": 1.0})
    defaults.update(population)
    return ScenarioSpec(
        name="aggregate", num_ues=1, duration_s=4.0, cc_name="prague",
        marker="l4span", channel_profile="static", seed=5,
        population=PopulationSpec(**defaults))


class TestKernelMechanics:
    def test_population_attached_per_cell(self):
        spec = ScenarioSpec(
            num_ues=0, duration_s=1.0, channel_profile="static", seed=3,
            cells=[CellSpec(cell_id=0), CellSpec(cell_id=1)],
            ues=[UeSpec(ue_id=0, cell_id=0), UeSpec(ue_id=1, cell_id=1)],
            population=PopulationSpec(n_background=8))
        built = build_scenario(spec)
        assert sorted(built.backgrounds) == [0, 1]
        for population in built.backgrounds.values():
            assert population.n == 8
            assert population.demand_count == 8  # bulk: everyone backlogged

    def test_result_reports_aggregate_counters(self):
        spec = _aggregate_spec(n_background=4)
        result = run_scenario(spec)
        background = result.background
        assert background["n_background"] == 4
        assert background["served_bytes"] > 0
        assert background["arrival_bytes"] > 0
        assert background["kernel_steps"] > 0
        assert result.background_throughput_mbps() > 0
        assert result.summary()["background_ues"] == 4
        # 1 foreground + 4 background UEs for 4 simulated seconds.
        assert result.simulated_ue_seconds() == pytest.approx(5 * 4.0)

    def test_background_contends_with_foreground(self):
        quiet = run_scenario(_aggregate_spec(n_background=0))
        loaded = run_scenario(_aggregate_spec(n_background=4))
        assert loaded.flows[0].goodput_mbps < 0.6 * quiet.flows[0].goodput_mbps

    def test_disabled_population_never_imports_kernel(self):
        sys.modules.pop("repro.ran.background", None)
        result = run_scenario(ScenarioSpec(
            num_ues=1, duration_s=0.5, channel_profile="static", seed=3))
        assert result.background == {}
        assert "repro.ran.background" not in sys.modules

    def test_numpy_guard_message(self, monkeypatch):
        import repro._numpy as _numpy
        import repro.ran.background as background
        monkeypatch.setattr(_numpy, "np", None)
        with pytest.raises(RuntimeError, match="numpy"):
            background._require_numpy()


class TestAccuracyEnvelope:
    def test_foreground_matches_fully_simulated_within_20_percent(self):
        """The acceptance anchor: aggregate model vs packet-exact equivalent.

        One Prague foreground flow shares a static cell with four CUBIC bulk
        downloads -- once fully simulated, once as a background population.
        The mean-field model trades per-UE packet timing for aggregate
        demand, so the foreground goodput must agree within 20%.
        """
        full = run_scenario(ScenarioSpec(
            name="full", num_ues=5, duration_s=4.0, marker="l4span",
            channel_profile="static", seed=5,
            flows=[FlowSpec(flow_id=0, ue_id=0, cc_name="prague")] +
                  [FlowSpec(flow_id=i, ue_id=i, cc_name="cubic")
                   for i in range(1, 5)]))
        aggregate = run_scenario(_aggregate_spec(
            n_background=4, cc_mix={"cubic": 1.0}))
        full_fg = full.flow(0).goodput_mbps
        aggregate_fg = aggregate.flows[0].goodput_mbps
        assert full_fg > 0 and aggregate_fg > 0
        assert 0.8 <= aggregate_fg / full_fg <= 1.25, (
            f"aggregate {aggregate_fg:.2f} Mbps vs fully simulated "
            f"{full_fg:.2f} Mbps")


def _dense_two_cell_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="dense-two-cell", num_ues=0, duration_s=2.0, marker="l4span",
        channel_profile="static", seed=9,
        cells=[CellSpec(cell_id=0), CellSpec(cell_id=1)],
        ues=[UeSpec(ue_id=0, cell_id=0), UeSpec(ue_id=1, cell_id=1)],
        population=PopulationSpec(
            n_background=50, workload="bulk",
            cc_mix={"prague": 0.5, "cubic": 0.5},
            snr_mean_db=20.0, snr_stddev_db=5.0, activity=0.6,
            churn_rate_per_s=3.0))


def _fingerprint(result) -> tuple:
    return (tuple(sorted(result.background.items())),
            tuple((f.flow_id, f.goodput_bytes_per_s, f.marked_fraction,
                   tuple(f.owd_samples)) for f in result.flows))


class TestDeterminism:
    def test_identical_across_repeats(self):
        spec = _dense_two_cell_spec()
        assert _fingerprint(run_scenario(spec)) == \
            _fingerprint(run_scenario(spec))

    def test_identical_across_shard_counts(self):
        spec = _dense_two_cell_spec()
        single = _fingerprint(run_scenario(spec))
        for shards in (1, 2):
            sharded = run_scenario_sharded(spec, shards=shards,
                                           inprocess=True)
            assert _fingerprint(sharded) == single

    def test_population_arrays_reproducible(self):
        spec = _dense_two_cell_spec()
        first = build_scenario(spec)
        second = build_scenario(spec)
        for cell_id, population in first.backgrounds.items():
            other = second.backgrounds[cell_id]
            assert np.array_equal(population.snr_db, other.snr_db)
            assert np.array_equal(population.active, other.active)
            assert np.array_equal(population.beta, other.beta)
        # Different cells draw from different named streams.
        assert not np.array_equal(first.backgrounds[0].snr_db,
                                  first.backgrounds[1].snr_db)
