"""Tests for the assembled gNB, UE context and 5G core routing."""

from __future__ import annotations

import pytest

from repro.channel.static import StaticChannel
from repro.net.base import CollectorSink
from repro.net.ecn import ECN
from repro.net.packet import make_ack_packet, make_data_packet
from repro.ran.core import FiveGCore
from repro.ran.gnb import GNodeB
from repro.ran.marker import NoopMarker
from repro.ran.ue import UeConfig, UeContext, UplinkModel


def _attach_ue(sim, gnb, ue_id=0, separate_drbs=True):
    ue = UeContext(sim, UeConfig(ue_id=ue_id, separate_drbs=separate_drbs),
                   StaticChannel(snr_db=22))
    gnb.attach_ue(ue)
    return ue


class TestGnbDataPath:
    def test_downlink_packet_reaches_ue_receiver(self, sim, five_tuple):
        gnb = GNodeB(sim)
        ue = _attach_ue(sim, gnb)
        sink = CollectorSink()
        ue.register_receiver(0, sink)
        packet = make_data_packet(0, five_tuple, 0, 1400, ECN.ECT1, 0.0)
        gnb.receive_downlink(packet, ue_id=0)
        sim.run(until=0.2)
        gnb.stop()
        assert len(sink) == 1
        assert "ue_delivered" in sink.received[0].timestamps

    def test_l4s_and_classic_use_separate_drbs(self, sim, five_tuple):
        gnb = GNodeB(sim)
        ue = _attach_ue(sim, gnb)
        ue.set_default_receiver(CollectorSink())
        l4s = make_data_packet(0, five_tuple, 0, 1400, ECN.ECT1, 0.0)
        classic = make_data_packet(1, five_tuple, 0, 1400, ECN.ECT0, 0.0)
        gnb.receive_downlink(l4s, 0)
        gnb.receive_downlink(classic, 0)
        sim.run(until=0.005)
        lengths = gnb.rlc_queue_lengths()
        gnb.stop()
        assert set(lengths) == {"ue0/drb1", "ue0/drb2"}

    def test_shared_drb_configuration(self, sim, five_tuple):
        gnb = GNodeB(sim)
        ue = _attach_ue(sim, gnb, separate_drbs=False)
        ue.set_default_receiver(CollectorSink())
        packet = make_data_packet(0, five_tuple, 0, 1400, ECN.ECT0, 0.0)
        gnb.receive_downlink(packet, 0)
        assert list(gnb.rlc_queue_lengths()) == ["ue0/drb1"]
        gnb.stop()

    def test_marker_sees_all_three_events(self, sim, five_tuple):
        gnb = GNodeB(sim)
        marker = NoopMarker()
        gnb.set_marker(marker)
        ue = _attach_ue(sim, gnb)
        sink = CollectorSink()
        ue.register_receiver(0, sink)
        gnb.uplink_sink = CollectorSink()
        data = make_data_packet(0, five_tuple, 0, 1400, ECN.ECT1, 0.0)
        gnb.receive_downlink(data, 0)
        sim.run(until=0.2)
        ack = make_ack_packet(data, 1400, sim.now)
        ue.send_uplink(ack)
        sim.run(until=0.4)
        gnb.stop()
        assert marker.downlink_packets == 1
        assert marker.feedback_messages >= 1
        assert marker.uplink_packets == 1

    def test_unknown_ue_rejected(self, sim, five_tuple):
        gnb = GNodeB(sim)
        packet = make_data_packet(0, five_tuple, 0, 1400, ECN.ECT1, 0.0)
        with pytest.raises(KeyError):
            gnb.receive_downlink(packet, ue_id=99)
        gnb.stop()

    def test_duplicate_attach_rejected(self, sim):
        gnb = GNodeB(sim)
        _attach_ue(sim, gnb, ue_id=1)
        with pytest.raises(ValueError):
            _attach_ue(sim, gnb, ue_id=1)
        gnb.stop()


class TestUeContext:
    def test_uplink_requires_attachment(self, sim, five_tuple):
        ue = UeContext(sim, UeConfig(ue_id=0), StaticChannel())
        data = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
        with pytest.raises(RuntimeError):
            ue.send_uplink(make_ack_packet(data, 100, 0.0))

    def test_uplink_delay_is_positive_and_load_dependent(self, sim):
        model = UplinkModel(sim, ue_id=0, base_delay=0.004, jitter=0.002)
        model.active_ue_count = lambda: 1
        single = [model.delay() for _ in range(100)]
        model.active_ue_count = lambda: 64
        loaded = [model.delay() for _ in range(100)]
        assert all(d >= 0.004 for d in single)
        assert (sum(loaded) / len(loaded)) > (sum(single) / len(single))

    def test_unregistered_flow_goes_to_default_receiver(self, sim, five_tuple):
        gnb = GNodeB(sim)
        ue = _attach_ue(sim, gnb)
        default = CollectorSink()
        ue.set_default_receiver(default)
        packet = make_data_packet(42, five_tuple, 0, 1400, ECN.ECT1, 0.0)
        gnb.receive_downlink(packet, 0)
        sim.run(until=0.2)
        gnb.stop()
        assert len(default) == 1


class TestFiveGCore:
    def test_downlink_routing_by_destination_ip(self, sim, five_tuple):
        gnb = GNodeB(sim)
        ue = _attach_ue(sim, gnb)
        sink = CollectorSink()
        ue.register_receiver(0, sink)
        core = FiveGCore(sim)
        core.register_ue_address(five_tuple.dst_ip, gnb, 0)
        core.receive(make_data_packet(0, five_tuple, 0, 1400, ECN.ECT1, 0.0))
        sim.run(until=0.2)
        gnb.stop()
        assert len(sink) == 1

    def test_unknown_destination_raises(self, sim, five_tuple):
        core = FiveGCore(sim)
        with pytest.raises(KeyError):
            core.receive(make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0))

    def test_uplink_routed_per_flow(self, sim, five_tuple):
        core = FiveGCore(sim)
        flow_sink, default_sink = CollectorSink(), CollectorSink()
        core.register_uplink_route(7, flow_sink)
        core.set_default_uplink(default_sink)
        data = make_data_packet(7, five_tuple, 0, 100, ECN.ECT1, 0.0)
        core.receive_uplink(make_ack_packet(data, 100, 0.0))
        other = make_data_packet(8, five_tuple, 0, 100, ECN.ECT1, 0.0)
        core.receive_uplink(make_ack_packet(other, 100, 0.0))
        sim.run()
        assert len(flow_sink) == 1
        assert len(default_sink) == 1
