"""Tests for the delta-debugging spec minimizer."""

from __future__ import annotations

import dataclasses

from repro.experiments.minimize import failure_signature, minimize_spec
from repro.experiments.spec import (CellSpec, HandoverSpec, MobilitySpec,
                                    ScenarioSpec, UeSpec)
from repro.workloads.flows import FlowSpec

import pytest


def _big_spec() -> ScenarioSpec:
    """4 cells, 6 UEs, 6 flows, every optional block switched on."""
    return ScenarioSpec(
        name="big", duration_s=0.8, num_ues=0,
        channel_profile="pedestrian",
        cells=[CellSpec(cell_id=c) for c in range(4)],
        ues=[UeSpec(ue_id=u, cell_id=u % 4) for u in range(6)],
        flows=[FlowSpec(flow_id=i, ue_id=i,
                        cc_name="cubic" if i in (2, 4) else "prague",
                        start_time=0.01 * i, wan_rtt=0.02 + 0.002 * i)
               for i in range(6)],
        wired_bottleneck_mbps=50.0,
        wired_bottleneck_schedule=[(0.4, 25.0)],
        seed=1234)


class TestFailureSignature:
    def test_prefixes_extracted(self):
        violations = ["sharding: shards=2 differ", "backend: numpy differs",
                      "sharding: shards=4 raised"]
        assert failure_signature(violations) == {"sharding", "backend"}

    def test_empty(self):
        assert failure_signature([]) == frozenset()


class TestMinimizeSpec:
    def test_rejects_passing_spec(self):
        with pytest.raises(ValueError, match="no violations"):
            minimize_spec(_big_spec(), lambda spec: [])

    def test_injected_break_shrinks_small(self):
        """The ISSUE acceptance bar: <= 2 cells and <= 4 UEs."""
        def injected(spec):
            if any(f.cc_name == "cubic" for f in spec.resolved_flows()):
                return ["injected: a cubic flow exists"]
            return []

        small = minimize_spec(_big_spec(), injected)
        assert injected(small)
        assert len(small.resolved_cells()) <= 2
        assert len(small.resolved_ues()) <= 4
        # The optional blocks played no part in the failure, so the
        # minimizer strips them all.
        assert small.wired_bottleneck_mbps is None
        assert small.channel_profile == "static"
        assert small.duration_s == pytest.approx(0.05)

    def test_minimum_still_validates(self):
        def injected(spec):
            return ["injected: always"]

        small = minimize_spec(_big_spec(), injected)
        small.validate()
        assert len(small.resolved_cells()) == 1
        assert len(small.resolved_ues()) == 1

    def test_signature_guard_blocks_degeneration(self):
        """A candidate failing a *different* way must be rejected.

        The predicate fails with class "alpha" on multi-cell specs but
        with class "beta" once shrunk to a single cell; minimization of
        the alpha failure must therefore keep >= 2 cells rather than
        adopt the beta-failing single-cell candidate.
        """
        def predicate(spec):
            if len(spec.resolved_cells()) >= 2:
                return ["alpha: multi-cell failure"]
            return ["beta: single-cell artifact"]

        small = minimize_spec(_big_spec(), predicate)
        assert len(small.resolved_cells()) == 2
        assert failure_signature(predicate(small)) == {"alpha"}

    def test_mobility_spec_minimizes_validly(self):
        """Dropping cells named by handovers must not yield invalid specs.

        Candidates that break validation (a handover targeting a dropped
        cell) are skipped, and the mobility-zeroing pass eventually
        unlocks the structural reductions anyway.
        """
        spec = dataclasses.replace(
            _big_spec(),
            mobility=MobilitySpec(
                mode="schedule", interruption_s=0.02,
                handovers=[HandoverSpec(time=0.4, ue_id=0, target_cell=3)]))

        def injected(s):
            return ["injected: always"]

        small = minimize_spec(spec, injected)
        small.validate()
        assert not small.mobility.enabled
        assert len(small.resolved_cells()) == 1

    def test_bounded_checks(self):
        calls = 0

        def counting(spec):
            nonlocal calls
            calls += 1
            return ["injected: always"]

        minimize_spec(_big_spec(), counting, max_checks=10)
        # The baseline check plus at most max_checks candidate checks.
        assert calls <= 11
