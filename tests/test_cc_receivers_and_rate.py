"""Tests for receivers (reassembly, ECN feedback) and the rate-based senders."""

from __future__ import annotations

import pytest

from repro.cc.receiver import ScreamReceiver, TcpReceiver, UdpFeedbackReceiver
from repro.cc.scream import ScreamSender
from repro.cc.udp_prague import UdpPragueSender
from repro.net.addresses import FiveTuple
from repro.net.ecn import ECN
from repro.net.packet import make_data_packet
from repro.net.pipe import DelayPipe
from repro.sim.engine import Simulator
from repro.units import mbps, to_mbps


def _data(five_tuple, seq, payload=1000, ecn=ECN.ECT1, cwr=False, now=0.0):
    packet = make_data_packet(0, five_tuple, seq, payload, ecn, now)
    packet.cwr = cwr
    return packet


class TestTcpReceiver:
    def test_cumulative_ack_advances_in_order(self, sim, five_tuple):
        acks = []
        receiver = TcpReceiver(sim, 0, send_feedback=acks.append)
        receiver.receive(_data(five_tuple, 0))
        receiver.receive(_data(five_tuple, 1000))
        assert [a.ack_seq for a in acks] == [1000, 2000]

    def test_out_of_order_generates_duplicate_acks_then_catches_up(
            self, sim, five_tuple):
        acks = []
        receiver = TcpReceiver(sim, 0, send_feedback=acks.append)
        receiver.receive(_data(five_tuple, 0))
        receiver.receive(_data(five_tuple, 2000))   # gap at 1000
        receiver.receive(_data(five_tuple, 3000))   # still gapped
        receiver.receive(_data(five_tuple, 1000))   # gap filled
        assert [a.ack_seq for a in acks] == [1000, 1000, 1000, 4000]

    def test_duplicate_data_does_not_regress_ack(self, sim, five_tuple):
        acks = []
        receiver = TcpReceiver(sim, 0, send_feedback=acks.append)
        receiver.receive(_data(five_tuple, 0))
        receiver.receive(_data(five_tuple, 0))
        assert [a.ack_seq for a in acks] == [1000, 1000]

    def test_classic_ece_latched_until_cwr(self, sim, five_tuple):
        acks = []
        receiver = TcpReceiver(sim, 0, send_feedback=acks.append,
                               accecn=False)
        receiver.receive(_data(five_tuple, 0, ecn=ECN.CE))
        receiver.receive(_data(five_tuple, 1000, ecn=ECN.ECT0))
        assert acks[0].ece and acks[1].ece
        receiver.receive(_data(five_tuple, 2000, ecn=ECN.ECT0, cwr=True))
        assert not acks[2].ece

    def test_accecn_counters_accumulate(self, sim, five_tuple):
        acks = []
        receiver = TcpReceiver(sim, 0, send_feedback=acks.append, accecn=True)
        receiver.receive(_data(five_tuple, 0, ecn=ECN.CE))
        receiver.receive(_data(five_tuple, 1000, ecn=ECN.ECT1))
        assert acks[-1].accecn.ce_packets == 1
        assert acks[-1].accecn.ect1_bytes > 0

    def test_owd_callback_invoked(self, sim, five_tuple):
        owds = []
        receiver = TcpReceiver(sim, 0, send_feedback=lambda a: None,
                               owd_callback=lambda owd, p: owds.append(owd))
        sim.schedule_at(0.1, lambda: receiver.receive(
            _data(five_tuple, 0, now=0.02)))
        sim.run()
        assert owds == [pytest.approx(0.08)]

    def test_acks_ignored(self, sim, five_tuple):
        receiver = TcpReceiver(sim, 0, send_feedback=lambda a: None)
        data = _data(five_tuple, 0)
        from repro.net.packet import make_ack_packet
        receiver.receive(make_ack_packet(data, 100, 0.0))
        assert receiver.received_packets == 0


class TestUdpReceivers:
    def test_udp_feedback_carries_counters(self, sim, five_tuple):
        feedback = []
        receiver = UdpFeedbackReceiver(sim, 0, send_feedback=feedback.append)
        receiver.receive(_data(five_tuple, 0, ecn=ECN.CE))
        assert feedback[-1].accecn.ce_bytes > 0
        assert feedback[-1].payload_info["udp_feedback"]

    def test_scream_feedback_is_periodic_not_per_packet(self, sim, five_tuple):
        feedback = []
        receiver = ScreamReceiver(sim, 0, send_feedback=feedback.append,
                                  feedback_interval=0.03)
        for i in range(10):
            sim.schedule_at(i * 0.002,
                            lambda i=i: receiver.receive(_data(five_tuple,
                                                               i * 1000)))
        sim.run(until=0.1)
        receiver.stop()
        assert 1 <= len(feedback) <= 4
        assert feedback[-1].payload_info["scream_feedback"]

    def test_scream_feedback_silent_when_no_data(self, sim):
        feedback = []
        receiver = ScreamReceiver(sim, 0, send_feedback=feedback.append)
        sim.run(until=0.2)
        receiver.stop()
        assert feedback == []


class _Loop:
    """Rate sender -> delay -> receiver -> delay -> sender feedback loop."""

    def __init__(self, sim, sender_cls, receiver_cls, mark_every=0):
        five_tuple = FiveTuple("10.0.0.1", 443, "10.1.0.2", 50_000, "udp")
        self.count = 0

        class _MarkAndDeliver:
            def __init__(self, inner, mark_every):
                self.inner = inner
                self.mark_every = mark_every
                self.seen = 0

            def receive(self, packet):
                self.seen += 1
                if self.mark_every and self.seen % self.mark_every == 0:
                    packet.mark_ce("test")
                self.inner.receive(packet)

        forward = DelayPipe(sim, 0.02)
        self.sender = sender_cls(sim, 0, five_tuple, path=forward)
        reverse = DelayPipe(sim, 0.02, sink=_CallSink(self.sender.receive))
        self.receiver = receiver_cls(sim, 0, send_feedback=reverse.receive)
        forward.sink = _MarkAndDeliver(self.receiver, mark_every)


class _CallSink:
    def __init__(self, fn):
        self._fn = fn

    def receive(self, packet):
        self._fn(packet)


class TestRateSenders:
    def test_udp_prague_increases_without_marks(self, sim):
        loop = _Loop(sim, UdpPragueSender, UdpFeedbackReceiver)
        initial_rate = loop.sender.rate
        sim.schedule_at(0.0, loop.sender.start)
        sim.run(until=3.0)
        loop.sender.stop()
        assert loop.sender.rate > initial_rate

    def test_udp_prague_backs_off_under_heavy_marking(self, sim):
        clean = _Loop(sim, UdpPragueSender, UdpFeedbackReceiver)
        sim.schedule_at(0.0, clean.sender.start)
        sim.run(until=3.0)
        clean.sender.stop()
        sim2 = Simulator(seed=1)
        marked = _Loop(sim2, UdpPragueSender, UdpFeedbackReceiver,
                       mark_every=3)
        sim2.schedule_at(0.0, marked.sender.start)
        sim2.run(until=3.0)
        marked.sender.stop()
        assert marked.sender.rate < clean.sender.rate
        assert marked.sender.stats.congestion_events > 0

    def test_scream_rate_stays_within_bounds(self, sim):
        loop = _Loop(sim, ScreamSender, ScreamReceiver, mark_every=5)
        sim.schedule_at(0.0, loop.sender.start)
        sim.run(until=3.0)
        loop.sender.stop()
        loop.receiver.stop()
        assert loop.sender.min_rate <= loop.sender.rate <= loop.sender.max_rate

    def test_scream_reduces_rate_when_marked(self, sim):
        loop = _Loop(sim, ScreamSender, ScreamReceiver, mark_every=2)
        sim.schedule_at(0.0, loop.sender.start)
        sim.run(until=3.0)
        loop.sender.stop()
        loop.receiver.stop()
        assert loop.sender.stats.congestion_events > 0

    def test_rate_sender_pacing_interval_matches_rate(self, sim):
        loop = _Loop(sim, UdpPragueSender, UdpFeedbackReceiver)
        # Pin the rate so the controller's additive increase cannot change it.
        loop.sender.max_rate = mbps(1.0)
        loop.sender.min_rate = mbps(1.0)
        loop.sender.set_rate(mbps(1.0))
        sim.schedule_at(0.0, loop.sender.start)
        sim.run(until=1.0)
        loop.sender.stop()
        sent_mbps = to_mbps(loop.sender.stats.sent_bytes / 1.0)
        assert sent_mbps == pytest.approx(1.0, rel=0.4)

    def test_finite_udp_flow_completes(self, sim):
        five_tuple = FiveTuple("10.0.0.1", 443, "10.1.0.2", 50_000, "udp")
        sink = _CallSink(lambda p: None)
        sender = UdpPragueSender(sim, 0, five_tuple, path=sink,
                                 flow_bytes=10_000)
        sim.schedule_at(0.0, sender.start)
        sim.run(until=5.0)
        assert sender.stats.completion_time is not None
