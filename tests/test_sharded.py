"""Tests for the process-per-cell sharding runtime.

The load-bearing property is the determinism contract: for a fixed spec on a
static channel, the sharded run produces per-flow metrics identical to the
single event loop, for any shard count and across repeats.  The conservative
boundary (core -> batch -> remote core) is additionally exercised directly
with hand-built shard hosts, since spec-split scenarios keep each flow's
whole path inside one shard.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.presets import make_preset
from repro.experiments.scenario import run_scenario, ue_ip_address
from repro.experiments.sharded import (ConservativeSyncError, ShardHost,
                                       ShardPlanError, boundary_lookahead,
                                       build_shard_plan, merge_shard_results,
                                       run_scenario_sharded, sharding_blockers,
                                       split_spec, window_schedule,
                                       wrapped_address_aliases)
from repro.experiments.spec import (CellSpec, HandoverSpec, MobilitySpec,
                                    ScenarioSpec, ShardingSpec, UeSpec)
from repro.net.addresses import FiveTuple
from repro.net.ecn import ECN
from repro.net.packet import make_data_packet
from repro.units import mbps, ms, transmission_time
from repro.workloads.flows import FlowSpec


def _two_cell_static(duration: float = 1.5) -> ScenarioSpec:
    base = make_preset("two-cell-imbalance")
    return dataclasses.replace(
        base, duration_s=duration,
        ues=[dataclasses.replace(ue, channel_profile="static")
             for ue in base.ues])


def _wrapped_address_spec(duration: float = 0.6) -> ScenarioSpec:
    """Two colliding address pairs (0/250, 1/251), winners cross-shard."""
    return ScenarioSpec(
        name="wrapped", duration_s=duration, num_ues=0, marker="l4span",
        cells=[CellSpec(cell_id=0), CellSpec(cell_id=1)],
        ues=[UeSpec(ue_id=0, cell_id=0, channel_profile="static"),
             UeSpec(ue_id=1, cell_id=1, channel_profile="static"),
             UeSpec(ue_id=250, cell_id=1, channel_profile="static"),
             UeSpec(ue_id=251, cell_id=0, channel_profile="static")],
        flows=[FlowSpec(flow_id=0, ue_id=0, cc_name="prague"),
               FlowSpec(flow_id=1, ue_id=1, cc_name="cubic",
                        start_time=0.02),
               FlowSpec(flow_id=2, ue_id=250, cc_name="prague",
                        start_time=0.01, wan_rtt=ms(30)),
               FlowSpec(flow_id=3, ue_id=251, cc_name="cubic",
                        start_time=0.03, wan_rtt=ms(40))],
        sharding=ShardingSpec(mode="auto", shards=2))


def _flows_equal(a, b) -> bool:
    return (a.flow_id == b.flow_id and a.ue_id == b.ue_id
            and a.cc_name == b.cc_name
            and a.owd_samples == b.owd_samples
            and list(a.rtt_samples) == list(b.rtt_samples)
            and a.goodput_bytes_per_s == b.goodput_bytes_per_s
            and a.completion_time == b.completion_time
            and a.congestion_events == b.congestion_events
            and a.marked_fraction == b.marked_fraction)


# --------------------------------------------------------------------- #
# Planning and spec splitting
# --------------------------------------------------------------------- #
class TestShardPlanning:
    def test_auto_plan_round_robins_cells(self):
        spec = make_preset("eight-cell")
        plan = build_shard_plan(spec, shards=3)
        assert plan.num_shards == 3
        assert plan.assignment == {c: c % 3 for c in range(8)}
        assert set().union(*(plan.cells_of(s) for s in range(3))) == set(range(8))

    def test_explicit_plan_renumbers_densely(self):
        spec = dataclasses.replace(
            _two_cell_static(),
            sharding=ShardingSpec(mode="explicit", map={0: 7, 1: 3}))
        plan = build_shard_plan(spec)
        assert plan.num_shards == 2
        assert plan.assignment == {0: 1, 1: 0}

    def test_explicit_plan_missing_cell_rejected(self):
        spec = dataclasses.replace(
            _two_cell_static(),
            sharding=ShardingSpec(mode="explicit", map={0: 0}))
        with pytest.raises(ValueError, match="misses cell"):
            spec.validate()

    def test_explicit_plan_unknown_cell_rejected(self):
        """A typo'd map key must fail fast, not silently reshape the plan."""
        spec = dataclasses.replace(
            _two_cell_static(),
            sharding=ShardingSpec(mode="explicit", map={0: 0, 1: 0, 9: 1}))
        with pytest.raises(ValueError, match="unknown cell"):
            spec.validate()

    def test_lookahead_is_min_wan_leg(self):
        spec = ScenarioSpec(flows=[
            FlowSpec(flow_id=0, ue_id=0, cc_name="prague", wan_rtt=ms(18)),
            FlowSpec(flow_id=1, ue_id=1, cc_name="prague")])
        assert boundary_lookahead(spec) == pytest.approx(ms(9))

    def test_wired_bottleneck_shards_bit_identically(self):
        """The coupled-topology protocol: a shared middlebox no longer
        blocks sharding — the queue is hosted on one shard and every flow
        crosses it, yet per-flow metrics match the single loop exactly."""
        spec = dataclasses.replace(_two_cell_static(duration=1.0),
                                   wired_bottleneck_mbps=20.0)
        assert sharding_blockers(spec) == []
        single = run_scenario(
            dataclasses.replace(spec, sharding=ShardingSpec(mode="off")))
        sharded = run_scenario_sharded(spec, shards=2, inprocess=True)
        assert all(_flows_equal(a, b)
                   for a, b in zip(single.flows, sharded.flows))
        assert sharded.sharding_stats["boundary_required"]
        assert sharded.sharding_stats["shards"] == 2

    def test_zero_rate_middlebox_schedule_shards_bit_identically(self):
        """A zero-rate step stalls the shared queue mid-run; the window
        floor rests at the schedule's rate-resume event and per-flow
        metrics still match the single loop exactly."""
        spec = dataclasses.replace(_two_cell_static(duration=1.2),
                                   wired_bottleneck_mbps=20.0,
                                   wired_bottleneck_schedule=[(0.5, 0.0),
                                                              (0.8, 20.0)])
        assert sharding_blockers(spec) == []
        single = run_scenario(
            dataclasses.replace(spec, sharding=ShardingSpec(mode="off")))
        sharded = run_scenario_sharded(spec, shards=2, inprocess=True)
        assert not sharded.sharding_stats.get("fallback")
        assert all(_flows_equal(a, b)
                   for a, b in zip(single.flows, sharded.flows))

    def test_zero_rate_stall_to_horizon_shards_bit_identically(self):
        """A stall that never resumes constrains no window (its queue
        never egresses again, exactly like the single loop's)."""
        spec = dataclasses.replace(_two_cell_static(duration=1.0),
                                   wired_bottleneck_mbps=20.0,
                                   wired_bottleneck_schedule=[(0.4, 0.0)])
        assert sharding_blockers(spec) == []
        single = run_scenario(
            dataclasses.replace(spec, sharding=ShardingSpec(mode="off")))
        sharded = run_scenario_sharded(spec, shards=2, inprocess=True)
        assert not sharded.sharding_stats.get("fallback")
        assert all(_flows_equal(a, b)
                   for a, b in zip(single.flows, sharded.flows))

    def test_explicit_plan_conflicting_shards_override_rejected(self):
        spec = dataclasses.replace(
            _two_cell_static(),
            sharding=ShardingSpec(mode="explicit", map={0: 0, 1: 1}))
        with pytest.raises(ShardPlanError, match="conflicts"):
            build_shard_plan(spec, shards=4)
        # A matching override is redundant but legal.
        assert build_shard_plan(spec, shards=2).num_shards == 2

    def test_wrapped_ue_address_space_shards_bit_identically(self):
        """>250 UEs alias client IPs; the single loop resolves each
        collision last-registration-wins (the losing flow degrades to a
        receiver-less trickle), and the alias-routing runtime reproduces
        that byte-for-byte across shards."""
        spec = _wrapped_address_spec()
        assert wrapped_address_aliases(spec) == {"10.45.0.2": 250,
                                                "10.45.0.3": 251}
        assert sharding_blockers(spec) == []
        assert sharding_blockers(_two_cell_static()) == []
        single = run_scenario(
            dataclasses.replace(spec, sharding=ShardingSpec(mode="off")))
        sharded = run_scenario_sharded(spec, shards=2, inprocess=True)
        assert not sharded.sharding_stats.get("fallback")
        assert all(_flows_equal(a, b)
                   for a, b in zip(single.flows, sharded.flows))
        assert single.per_ue_throughput == sharded.per_ue_throughput
        # The losing flows' senders get no ACKs: zero delivered goodput,
        # on both execution paths.
        assert single.flows[0].goodput_bytes_per_s == 0.0
        assert single.flows[1].goodput_bytes_per_s == 0.0
        assert single.flows[2].goodput_bytes_per_s > 0.0

    def test_wrapped_plus_mobile_ue_still_blocks(self):
        """A mobile UE on a wrapped address would need a *dynamic* winner
        map; that combination stays refused."""
        spec = dataclasses.replace(
            _wrapped_address_spec(),
            mobility=MobilitySpec(mode="schedule", handovers=[
                HandoverSpec(time=0.2, ue_id=250, target_cell=0)]))
        assert any("wrapped" in reason and "mobile" in reason
                   for reason in sharding_blockers(spec))
        with pytest.raises(ShardPlanError, match="wrapped"):
            run_scenario_sharded(
                dataclasses.replace(
                    spec, sharding=ShardingSpec(mode="explicit",
                                                map={0: 0, 1: 1})),
                inprocess=True)

    def test_split_spec_partitions_cells_ues_flows(self):
        spec = make_preset("eight-cell").validate()
        plan = build_shard_plan(spec, shards=4)
        subs = split_spec(spec, plan)
        assert len(subs) == 4
        seen_cells, seen_ues, seen_flows = set(), set(), set()
        for sub in subs:
            sub.validate()
            assert sub.seed == spec.seed  # the determinism contract
            assert not sub.sharding.enabled
            seen_cells.update(c.cell_id for c in sub.cells)
            seen_ues.update(u.ue_id for u in sub.ues)
            seen_flows.update(f.flow_id for f in sub.resolved_flows())
        assert seen_cells == set(range(8))
        assert seen_ues == set(range(8))
        assert seen_flows == set(range(8))

    def test_window_schedule_covers_duration_exactly(self):
        ends = window_schedule(1.0, 0.19)
        assert ends[-1] == 1.0
        assert all(b - a <= 0.19 + 1e-12
                   for a, b in zip([0.0] + ends, ends))


# --------------------------------------------------------------------- #
# The acceptance property: sharded == single loop, per flow
# --------------------------------------------------------------------- #
class TestShardDeterminism:
    def test_two_cell_sharded_matches_single_loop(self):
        spec = _two_cell_static()
        single = run_scenario(spec)
        sharded = run_scenario_sharded(spec, shards=2, inprocess=True)
        assert len(single.flows) == len(sharded.flows) == 4
        for a, b in zip(single.flows, sharded.flows):
            assert _flows_equal(a, b)
        assert single.queue_length_samples == sharded.queue_length_samples
        assert single.queue_length_by_drb == sharded.queue_length_by_drb
        assert single.per_ue_throughput == sharded.per_ue_throughput
        assert single.marker_summary == sharded.marker_summary
        for key, value in single.delay_breakdown.items():
            assert sharded.delay_breakdown[key] == pytest.approx(value)

    def test_eight_cell_shards4_matches_single_loop(self):
        """The acceptance criterion: 8-cell preset, 4 shards, identical."""
        spec = dataclasses.replace(make_preset("eight-cell"), duration_s=1.0)
        single = run_scenario(spec)
        sharded = run_scenario_sharded(spec, shards=4, inprocess=True)
        assert len(sharded.flows) == 8
        for a, b in zip(single.flows, sharded.flows):
            assert _flows_equal(a, b)
        assert single.queue_length_by_drb == sharded.queue_length_by_drb

    def test_sharded_run_reproducible_across_repeats_and_shard_counts(self):
        spec = dataclasses.replace(make_preset("eight-cell"), duration_s=1.0)
        runs = [run_scenario_sharded(spec, shards=n, inprocess=True)
                for n in (2, 2, 4, 8)]
        reference = runs[0]
        for other in runs[1:]:
            for a, b in zip(reference.flows, other.flows):
                assert _flows_equal(a, b)
            assert reference.queue_length_by_drb == other.queue_length_by_drb

    def test_explicit_map_matches_auto(self):
        spec = _two_cell_static()
        auto = run_scenario_sharded(spec, shards=2, inprocess=True)
        explicit = run_scenario_sharded(
            dataclasses.replace(spec, sharding=ShardingSpec(
                mode="explicit", map={0: 1, 1: 0})),
            inprocess=True)
        for a, b in zip(auto.flows, explicit.flows):
            assert _flows_equal(a, b)

    def test_spec_sharding_block_drives_run_scenario(self):
        spec = dataclasses.replace(
            _two_cell_static(), sharding=ShardingSpec(mode="auto", shards=2))
        import os
        os.environ["REPRO_SHARD_INPROCESS"] = "1"
        try:
            via_spec = run_scenario(spec)
        finally:
            del os.environ["REPRO_SHARD_INPROCESS"]
        plain = run_scenario(dataclasses.replace(spec,
                                                 sharding=ShardingSpec()))
        for a, b in zip(plain.flows, via_spec.flows):
            assert _flows_equal(a, b)

    def test_sharding_spec_json_round_trip(self):
        spec = dataclasses.replace(
            _two_cell_static(),
            sharding=ShardingSpec(mode="explicit", map={0: 0, 1: 1}))
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.sharding.map == {0: 0, 1: 1}  # int keys survive JSON


# --------------------------------------------------------------------- #
# Worker-process synchronizer (the real multiprocessing path)
# --------------------------------------------------------------------- #
class TestProcessSynchronizer:
    def test_process_run_matches_inprocess_run(self):
        spec = _two_cell_static(duration=1.0)
        inproc = run_scenario_sharded(spec, shards=2, inprocess=True)
        # Graceful degrade means this passes either way; when processes are
        # available the comparison exercises pickling and the pipe protocol.
        procs = run_scenario_sharded(spec, shards=2, inprocess=False)
        for a, b in zip(inproc.flows, procs.flows):
            assert _flows_equal(a, b)
        assert inproc.queue_length_by_drb == procs.queue_length_by_drb


# --------------------------------------------------------------------- #
# The conservative boundary itself (cross-shard packet exchange)
# --------------------------------------------------------------------- #
class TestBoundaryExchange:
    def _host(self, ue_id: int, shard: int) -> ShardHost:
        sub = ScenarioSpec(
            name=f"boundary-shard{shard}", num_ues=0, duration_s=1.0,
            channel_profile="static",
            cells=[CellSpec(cell_id=shard)],
            ues=[UeSpec(ue_id=ue_id, cell_id=shard)],
            flows=[FlowSpec(flow_id=ue_id, ue_id=ue_id, cc_name="prague")])
        return ShardHost(sub, shard)

    def test_unroutable_packet_crosses_boundary_and_delivers(self):
        lookahead = 0.02
        host_a = self._host(ue_id=0, shard=0)
        host_b = self._host(ue_id=1, shard=1)
        # A downlink packet for UE 1 entering shard 0's core is unroutable
        # there: it must land in the boundary buffer, not raise.
        stray = make_data_packet(
            flow_id=1, five_tuple=FiveTuple(
                src_ip="10.0.0.1", src_port=443,
                dst_ip=ue_ip_address(1), dst_port=50_001, protocol="tcp"),
            seq=0, payload=1200, ecn=ECN.ECT1, now=0.0)
        host_a.scenario.sim.schedule_at(0.005, host_a.scenario.core.receive,
                                        stray)
        batch = host_a.advance(lookahead)
        assert [packet for _t, packet in batch] == [stray]
        handoff = batch[0][0]
        assert handoff == pytest.approx(0.005)
        # Deliver on shard B with the router's lookahead stamp.  Shard A's
        # core never stamped the stray (it had no route), so the stamp
        # proves shard B's core ingested it, at exactly the delivery time.
        assert "core_ingress" not in stray.timestamps
        host_b.advance(lookahead)
        host_b.inject([(handoff + lookahead, stray)])
        host_b.advance(2 * lookahead)
        assert stray.timestamps["core_ingress"] == \
            pytest.approx(handoff + lookahead)

    def test_unroutable_downlink_fails_loudly_at_the_router(self):
        """The single loop's core raises for an unknown downlink address;
        the boundary router must be as loud instead of silently dropping."""
        from repro.experiments.sharded import _BoundaryRouter

        router = _BoundaryRouter(ip_to_shard={}, flow_to_shard={},
                                 lookahead=0.02, num_shards=2)
        stray = make_data_packet(
            flow_id=99, five_tuple=FiveTuple(
                src_ip="10.0.0.1", src_port=443, dst_ip="10.45.0.200",
                dst_port=50_099, protocol="tcp"),
            seq=0, payload=1200, ecn=ECN.ECT1, now=0.0)
        with pytest.raises(KeyError, match="no shard can deliver"):
            router.route([[(0.001, stray)], []])

    def test_collision_free_plan_runs_one_window(self):
        """No cross-shard route -> unbounded lookahead -> single window
        (the boundary machinery stays armed but never exchanges)."""
        from repro.experiments.sharded import _BoundaryRouter

        spec = _two_cell_static().validate()
        plan = build_shard_plan(spec, shards=2)
        router = _BoundaryRouter.for_plan(spec, plan, ue_ip=ue_ip_address)
        assert not router.boundary_required

    def test_late_boundary_packet_raises(self):
        host = self._host(ue_id=0, shard=0)
        host.advance(0.04)
        stray = make_data_packet(
            flow_id=0, five_tuple=FiveTuple(
                src_ip="10.0.0.1", src_port=443,
                dst_ip=ue_ip_address(0), dst_port=50_000, protocol="tcp"),
            seq=0, payload=1200, ecn=ECN.ECT1, now=0.0)
        with pytest.raises(ConservativeSyncError):
            host.inject([(0.01, stray)])

    def test_late_pre_routed_item_raises_too(self):
        """The guard covers pre-routed (mode-tagged) items, not just the
        legacy table-routed pairs."""
        host = self._host(ue_id=0, shard=0)
        host.advance(0.04)
        stray = make_data_packet(
            flow_id=0, five_tuple=FiveTuple(
                src_ip="10.0.0.1", src_port=443,
                dst_ip=ue_ip_address(0), dst_port=50_000, protocol="tcp"),
            seq=0, payload=1200, ecn=ECN.ECT1, now=0.0)
        with pytest.raises(ConservativeSyncError):
            host.inject([(0.02, stray, "core_dl")])

    def test_unknown_boundary_item_mode_raises(self):
        """Protocol corruption (an unrecognised mode tag) must fail fast,
        not silently drop the payload."""
        host = self._host(ue_id=0, shard=0)
        with pytest.raises(ValueError, match="unknown boundary item mode"):
            host.inject([(0.5, object(), "warp_drive")])


# --------------------------------------------------------------------- #
# Merge step
# --------------------------------------------------------------------- #
class TestMergeStep:
    def test_merged_result_schema_matches_single_loop(self):
        spec = _two_cell_static(duration=1.0)
        single = run_scenario(spec)
        sharded = run_scenario_sharded(spec, shards=2, inprocess=True)
        assert dataclasses.asdict(single).keys() == \
            dataclasses.asdict(sharded).keys()
        assert single.summary().keys() == sharded.summary().keys()
        # events differ only by the extra per-shard sampler/probe ticks
        assert sharded.events_processed >= single.events_processed

    def test_merge_orders_flows_and_queues_by_full_spec(self):
        spec = _two_cell_static(duration=1.0).validate()
        plan = build_shard_plan(spec, shards=2)
        subs = split_spec(spec, plan)
        hosts = [ShardHost(sub, i) for i, sub in enumerate(subs)]
        for end in window_schedule(spec.duration_s, plan.lookahead):
            for host in hosts:
                host.advance(end)
        # Merge with the shard results deliberately reversed: ordering must
        # come from the spec, not from worker completion order.
        results = [host.finish() for host in hosts][::-1]
        merged = merge_shard_results(spec, plan, results)
        assert [f.flow_id for f in merged.flows] == \
            [f.flow_id for f in spec.resolved_flows()]
        single = run_scenario(spec)
        assert list(merged.queue_length_by_drb) == \
            list(single.queue_length_by_drb)


class TestTrackedLinkStall:
    """Unit coverage for the zero-rate stall branch of _TrackedLink.

    The sharded middlebox runtime relies on the link holding its head
    packet (rather than dropping it or dividing by zero) while a
    schedule step pins the rate to 0, and on ``set_rate`` restarting
    the serialisation pipeline when the schedule resumes.
    """

    @staticmethod
    def _packet(seq: int):
        return make_data_packet(
            flow_id=0, five_tuple=FiveTuple(
                src_ip="10.0.0.1", src_port=443, dst_ip="10.45.0.2",
                dst_port=50_000, protocol="tcp"),
            seq=seq, payload=1200, ecn=ECN.ECT1, now=0.0)

    def test_stall_holds_head_then_resume_delivers_in_order(self):
        from repro.experiments.sharded import _TrackedLink
        from repro.sim.engine import Simulator

        sim = Simulator(seed=0)
        delivered = []

        class Sink:
            def receive(self, packet):
                delivered.append((sim.now, packet.seq))

        link = _TrackedLink(sim, rate=0.0, sink=Sink())
        first, second = self._packet(0), self._packet(1200)
        link.receive(first)
        link.receive(second)
        sim.run(until=0.1)
        # Stalled: both packets held on the queue, nothing predicted to
        # complete — the synchronizer floor must come from the schedule.
        assert delivered == []
        assert link.next_completion is None
        assert not link._busy  # noqa: SLF001 - asserting the stall state
        assert link.queued_bytes == first.size + second.size
        # Resuming re-enters the transmit pipeline in FIFO order.  (The
        # clock sits at the last processed event — a stalled link
        # schedules nothing — so serialisation restarts from sim.now.)
        resumed_at = sim.now
        link.set_rate(mbps(20.0))
        sim.run(until=1.0)
        assert [seq for _t, seq in delivered] == [0, 1200]
        assert delivered[0][0] == pytest.approx(
            resumed_at + transmission_time(first.size, mbps(20.0)))
        assert link.next_completion is None

    def test_resume_to_zero_is_a_no_op(self):
        from repro.experiments.sharded import _TrackedLink
        from repro.sim.engine import Simulator

        sim = Simulator(seed=0)
        link = _TrackedLink(sim, rate=0.0, sink=None)
        link.receive(self._packet(0))
        sim.run(until=0.05)
        link.set_rate(0.0)
        sim.run(until=0.1)
        assert link.queue.peek() is not None
        assert link.next_completion is None

    def test_middlebox_floor_tracks_next_resume(self):
        """While the shared queue is stalled the window floor is the
        schedule's next positive-rate step; a schedule that never
        resumes constrains nothing (floor() -> None path)."""
        spec = dataclasses.replace(
            _two_cell_static(duration=1.0), wired_bottleneck_mbps=20.0,
            wired_bottleneck_schedule=[(0.2, 0.0), (0.6, 10.0)])
        spec = spec.validate()
        plan = build_shard_plan(spec, shards=2)
        subs = split_spec(spec, plan)
        mbx_shard = plan.assignment[spec.resolved_cells()[0].cell_id]
        coupling = {"full_spec": spec.to_dict(),
                    "assignment": plan.assignment,
                    "lookahead": plan.lookahead,
                    "mbx_shard": mbx_shard}
        hosts = [ShardHost(sub, i, coupling=coupling)
                 for i, sub in enumerate(subs)]
        mbx = next(h.middlebox for h in hosts if h.middlebox is not None
                   and h.middlebox.router is not None)
        assert mbx._resume_times == [0.6]  # noqa: SLF001
        assert mbx._next_resume(0.0) == pytest.approx(0.6)  # noqa: SLF001
        assert mbx._next_resume(0.6) is None  # noqa: SLF001
