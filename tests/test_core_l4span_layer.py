"""Unit tests for the L4Span layer's three event handlers."""

from __future__ import annotations

import pytest

from repro.core.config import L4SpanConfig
from repro.core.l4span import L4SpanLayer
from repro.net.addresses import FiveTuple
from repro.net.ecn import ECN, FlowClass
from repro.net.packet import AccEcnCounters, make_ack_packet, make_data_packet
from repro.ran.f1u import DeliveryStatus
from repro.units import ms


@pytest.fixture
def layer(sim) -> L4SpanLayer:
    return L4SpanLayer(sim, config=L4SpanConfig())


def feed_constant_rate(layer: L4SpanLayer, five_tuple, ue_id=0, drb_id=1,
                       packets=60, interval=0.001, ecn=ECN.ECT1,
                       transmit_lag=1):
    """Drive the layer with packets that the 'RLC' transmits ``transmit_lag``
    reports later, producing a steady egress-rate estimate."""
    for i in range(packets):
        now = i * interval
        packet = make_data_packet(0, five_tuple, i * 1440, 1400, ecn, now)
        layer.on_downlink_packet(packet, ue_id, drb_id, now)
        txed = i - transmit_lag
        if txed >= 0:
            layer.on_ran_feedback(DeliveryStatus(ue_id, drb_id, txed, None,
                                                 now), now)
    return layer.drb_state(ue_id, drb_id)


class TestDownlinkHandler:
    def test_creates_flow_and_profile_state(self, layer, five_tuple):
        packet = make_data_packet(0, five_tuple, 0, 1400, ECN.ECT1, 0.0)
        layer.on_downlink_packet(packet, 3, 1, 0.0)
        assert layer.flow_record(five_tuple) is not None
        assert layer.drb_state(3, 1).profile.queued_bytes == packet.size
        assert layer.flow_record(five_tuple).flow_class == FlowClass.L4S

    def test_flow_classification_by_ecn(self, layer, five_tuple):
        classic_tuple = FiveTuple("10.0.0.1", 443, "10.45.0.3", 50_001, "tcp")
        layer.on_downlink_packet(
            make_data_packet(0, five_tuple, 0, 1400, ECN.ECT1, 0.0), 0, 1, 0.0)
        layer.on_downlink_packet(
            make_data_packet(1, classic_tuple, 0, 1400, ECN.ECT0, 0.0), 0, 2, 0.0)
        assert layer.flow_record(five_tuple).flow_class == FlowClass.L4S
        assert layer.flow_record(classic_tuple).flow_class == FlowClass.CLASSIC

    def test_no_marking_before_any_feedback(self, layer, five_tuple):
        for i in range(50):
            packet = make_data_packet(0, five_tuple, i * 1440, 1400,
                                      ECN.ECT1, i * 0.001)
            layer.on_downlink_packet(packet, 0, 1, i * 0.001)
        assert layer.marked_packets == 0

    def test_l4s_marking_triggers_when_queue_exceeds_threshold(
            self, layer, five_tuple):
        # Transmit slowly (every 4th report lags) so the standing queue grows
        # well past 10 ms worth of the measured egress rate.
        state = feed_constant_rate(layer, five_tuple, packets=120,
                                   transmit_lag=60)
        assert state.prediction.sojourn > layer.config.sojourn_threshold
        probability = layer.mark_probability(state,
                                             layer.flow_record(five_tuple))
        assert probability > 0.5
        assert layer.marked_packets > 0

    def test_l4s_no_marking_when_queue_shallow(self, layer, five_tuple):
        state = feed_constant_rate(layer, five_tuple, packets=120,
                                   transmit_lag=1)
        probability = layer.mark_probability(state,
                                             layer.flow_record(five_tuple))
        assert probability < 0.2

    def test_tcp_l4s_marks_are_bookkept_not_applied(self, layer, five_tuple):
        feed_constant_rate(layer, five_tuple, packets=120, transmit_lag=60)
        flow = layer.flow_record(five_tuple)
        assert flow.tentative.ce_packets == flow.marked_packets
        # With short-circuiting enabled the downlink packets stay unmarked.
        assert flow.marked_packets > 0

    def test_udp_marks_applied_to_downlink_packet(self, sim):
        layer = L4SpanLayer(sim)
        udp_tuple = FiveTuple("10.0.0.1", 443, "10.45.0.2", 50_000, "udp")
        marked = 0
        for i in range(120):
            now = i * 0.001
            packet = make_data_packet(0, udp_tuple, i * 1240, 1200, ECN.ECT1,
                                      now)
            packet.protocol = "udp"
            layer.on_downlink_packet(packet, 0, 1, now)
            if i >= 60:
                layer.on_ran_feedback(DeliveryStatus(0, 1, i - 60, None, now),
                                      now)
            marked += packet.ecn == ECN.CE
        assert marked > 0

    def test_shortcircuit_disabled_marks_downlink_tcp(self, sim, five_tuple):
        layer = L4SpanLayer(sim, config=L4SpanConfig(enable_shortcircuit=False))
        ce = 0
        for i in range(120):
            now = i * 0.001
            packet = make_data_packet(0, five_tuple, i * 1440, 1400, ECN.ECT1,
                                      now)
            layer.on_downlink_packet(packet, 0, 1, now)
            if i >= 60:
                layer.on_ran_feedback(DeliveryStatus(0, 1, i - 60, None, now),
                                      now)
            ce += packet.ecn == ECN.CE
        assert ce > 0


class TestFeedbackHandler:
    def test_feedback_updates_prediction(self, layer, five_tuple):
        state = feed_constant_rate(layer, five_tuple, packets=60)
        assert state.feedback_count > 0
        assert state.prediction.rate > 0

    def test_rate_estimate_close_to_actual_drain_rate(self, layer, five_tuple):
        # 1440-byte packets transmitted every millisecond -> ~1.44 MB/s.
        state = feed_constant_rate(layer, five_tuple, packets=200,
                                   interval=0.001, transmit_lag=1)
        assert state.prediction.rate == pytest.approx(1.44e6, rel=0.3)

    def test_feedback_for_unknown_drb_creates_state(self, layer):
        layer.on_ran_feedback(DeliveryStatus(9, 9, None, None, 0.0), 0.0)
        assert (9, 9) in [(k.ue_id, k.drb_id) for k in layer.drb_states]


class TestUplinkHandler:
    def _make_marked_flow(self, layer, five_tuple):
        feed_constant_rate(layer, five_tuple, packets=120, transmit_lag=60)
        return layer.flow_record(five_tuple)

    def test_accecn_ack_rewritten_with_bookkept_marks(self, layer, five_tuple):
        flow = self._make_marked_flow(layer, five_tuple)
        data = make_data_packet(0, five_tuple, 0, 1400, ECN.ECT1, 0.0)
        ack = make_ack_packet(data, 1440, 0.2, accecn=AccEcnCounters())
        layer.on_uplink_packet(ack, 0.2)
        assert ack.accecn.ce_packets == flow.tentative.ce_packets
        assert ack.accecn.ce_bytes == flow.tentative.ce_bytes
        assert layer.shortcircuited_acks == 1

    def test_classic_ack_gets_ece_until_cwr(self, sim):
        layer = L4SpanLayer(sim)
        classic_tuple = FiveTuple("10.0.0.1", 443, "10.45.0.2", 50_002, "tcp")
        # Build a classic flow with a known RTT and a backlogged queue so the
        # classic marking rule fires.
        for i in range(150):
            now = i * 0.001
            packet = make_data_packet(0, classic_tuple, i * 1440, 1400,
                                      ECN.ECT0, now)
            layer.on_downlink_packet(packet, 0, 1, now)
            if i == 0:
                data = packet
            if i >= 100:
                layer.on_ran_feedback(DeliveryStatus(0, 1, i - 100, None, now),
                                      now)
            if i == 5:
                ack = make_ack_packet(data, 1440, now)
                layer.on_uplink_packet(ack, now)  # establishes initial RTT
        flow = layer.flow_record(classic_tuple)
        flow.ece_latched = True  # simulate an earlier marking decision
        ack = make_ack_packet(data, 2880, 0.2)
        layer.on_uplink_packet(ack, 0.2)
        assert ack.ece
        # A downlink packet with CWR clears the latch.
        cwr_packet = make_data_packet(0, classic_tuple, 999_000, 1400,
                                      ECN.ECT0, 0.21)
        cwr_packet.cwr = True
        layer.on_downlink_packet(cwr_packet, 0, 1, 0.21)
        assert not flow.ece_latched

    def test_uplink_establishes_initial_rtt(self, layer, five_tuple):
        packet = make_data_packet(0, five_tuple, 0, 1400, ECN.ECT1, 0.0)
        layer.on_downlink_packet(packet, 0, 1, 0.0)
        ack = make_ack_packet(packet, 1440, 0.042, accecn=AccEcnCounters())
        layer.on_uplink_packet(ack, 0.042)
        assert layer.flow_record(five_tuple).initial_rtt == pytest.approx(0.042)

    def test_unknown_flow_ack_passes_through(self, layer, five_tuple):
        data = make_data_packet(0, five_tuple, 0, 1400, ECN.ECT1, 0.0)
        ack = make_ack_packet(data, 1440, 0.1, accecn=AccEcnCounters())
        layer.on_uplink_packet(ack, 0.1)  # no downlink seen: must not crash
        assert ack.accecn.ce_packets == 0


class TestSharedDrb:
    def test_shared_drb_uses_coupled_probability(self, sim):
        layer = L4SpanLayer(sim)
        l4s_tuple = FiveTuple("10.0.0.1", 443, "10.45.0.2", 50_000, "tcp")
        classic_tuple = FiveTuple("10.0.0.1", 443, "10.45.0.2", 50_001, "tcp")
        for i in range(150):
            now = i * 0.001
            l4s_packet = make_data_packet(0, l4s_tuple, i * 1440, 1400,
                                          ECN.ECT1, now)
            classic_packet = make_data_packet(1, classic_tuple, i * 1440, 1400,
                                              ECN.ECT0, now)
            layer.on_downlink_packet(l4s_packet, 0, 1, now)
            layer.on_downlink_packet(classic_packet, 0, 1, now)
            if i == 2:
                layer.on_uplink_packet(
                    make_ack_packet(classic_packet, 1440, now), now)
                layer.on_uplink_packet(
                    make_ack_packet(l4s_packet, 1440, now,
                                    accecn=AccEcnCounters()), now)
            if i >= 40:
                layer.on_ran_feedback(
                    DeliveryStatus(0, 1, 2 * (i - 40), None, now), now)
        state = layer.drb_state(0, 1)
        assert state.is_shared
        l4s_flow = layer.flow_record(l4s_tuple)
        classic_flow = layer.flow_record(classic_tuple)
        p_l4s = layer.mark_probability(state, l4s_flow)
        p_classic = layer.mark_probability(state, classic_flow)
        assert p_l4s > 0
        # The coupled probability is alpha * sqrt(p_classic) with alpha ~ 1.6.
        assert p_l4s == pytest.approx(
            min(1.0, (2.0 / 1.2247) * p_classic ** 0.5), rel=0.05)


class TestHousekeeping:
    def test_summary_counts(self, layer, five_tuple):
        feed_constant_rate(layer, five_tuple, packets=30)
        summary = layer.summary()
        assert summary["downlink_packets"] == 30
        assert summary["flows"] == 1
        assert summary["drbs"] == 1

    def test_profile_purged_over_time(self, sim, five_tuple):
        layer = L4SpanLayer(sim, config=L4SpanConfig(profile_horizon=0.05))
        for i in range(400):
            now = i * 0.001
            packet = make_data_packet(0, five_tuple, i * 1440, 1400, ECN.ECT1,
                                      now)
            layer.on_downlink_packet(packet, 0, 1, now)
            layer.on_ran_feedback(DeliveryStatus(0, 1, i, None, now), now)
        assert len(layer.drb_state(0, 1).profile) < 400

    def test_processing_times_recorded_when_enabled(self, sim, five_tuple):
        layer = L4SpanLayer(sim, config=L4SpanConfig(measure_processing=True))
        packet = make_data_packet(0, five_tuple, 0, 1400, ECN.ECT1, 0.0)
        layer.on_downlink_packet(packet, 0, 1, 0.0)
        layer.on_ran_feedback(DeliveryStatus(0, 1, 0, None, 0.0), 0.0)
        layer.on_uplink_packet(make_ack_packet(packet, 1440, 0.01,
                                               accecn=AccEcnCounters()), 0.01)
        assert len(layer.processing_times["downlink"]) == 1
        assert len(layer.processing_times["feedback"]) == 1
        assert len(layer.processing_times["uplink"]) == 1
