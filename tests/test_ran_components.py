"""Tests for cell config, SDAP, PDCP, F1-U, PHY and the MAC scheduler."""

from __future__ import annotations

import pytest

from repro.channel.static import StaticChannel
from repro.net.ecn import ECN
from repro.net.packet import make_data_packet
from repro.ran.cell import CellConfig
from repro.ran.f1u import DeliveryStatus, F1UInterface
from repro.ran.identifiers import DrbConfig, DrbServiceClass
from repro.ran.mac import MacScheduler, SchedulerPolicy
from repro.ran.pdcp import PdcpEntity
from repro.ran.phy import AirInterface, AirInterfaceConfig
from repro.ran.sdap import SdapEntity


class TestCellConfig:
    def test_slot_duration_for_30khz(self):
        assert CellConfig(subcarrier_spacing_khz=30).slot_duration == pytest.approx(0.0005)

    def test_slot_duration_for_15khz(self):
        assert CellConfig(subcarrier_spacing_khz=15).slot_duration == pytest.approx(0.001)

    def test_peak_rate_close_to_paper_cell(self):
        # The paper's 20 MHz n78 cell yields roughly 40 Mbit/s.
        assert 30 <= CellConfig().peak_rate_mbps() <= 50

    def test_capacity_scales_with_prbs(self):
        cell = CellConfig()
        assert cell.slot_capacity_bytes(5.0, num_prb=10) < \
            cell.slot_capacity_bytes(5.0, num_prb=40)

    def test_describe_mentions_bandwidth(self):
        assert "20 MHz" in CellConfig().describe()


class TestSdap:
    def _sdap_with_split_drbs(self):
        return SdapEntity(0, [
            DrbConfig(1, service_class=DrbServiceClass.L4S),
            DrbConfig(2, service_class=DrbServiceClass.CLASSIC),
        ])

    def test_l4s_packet_maps_to_l4s_drb(self, five_tuple):
        sdap = self._sdap_with_split_drbs()
        packet = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
        assert sdap.drb_for_packet(packet) == 1

    def test_classic_packet_maps_to_classic_drb(self, five_tuple):
        sdap = self._sdap_with_split_drbs()
        packet = make_data_packet(0, five_tuple, 0, 100, ECN.ECT0, 0.0)
        assert sdap.drb_for_packet(packet) == 2

    def test_single_drb_catches_everything(self, five_tuple):
        sdap = SdapEntity(0, [DrbConfig(1)])
        for ecn in (ECN.ECT0, ECN.ECT1, ECN.NOT_ECT):
            packet = make_data_packet(0, five_tuple, 0, 100, ecn, 0.0)
            assert sdap.drb_for_packet(packet) == 1

    def test_explicit_qfi_pin_wins(self, five_tuple):
        sdap = self._sdap_with_split_drbs()
        sdap.map_qfi(9, 2)
        packet = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
        assert sdap.drb_for_packet(packet, qfi=9) == 2

    def test_pinning_unknown_drb_rejected(self):
        sdap = self._sdap_with_split_drbs()
        with pytest.raises(KeyError):
            sdap.map_qfi(9, 99)

    def test_needs_at_least_one_drb(self):
        with pytest.raises(ValueError):
            SdapEntity(0, [])


class TestPdcp:
    def test_sequence_numbers_increase(self, five_tuple):
        submitted = []
        pdcp = PdcpEntity(0, DrbConfig(1),
                          send_downlink=lambda *args: submitted.append(args))
        for i in range(3):
            packet = make_data_packet(0, five_tuple, i * 100, 100, ECN.ECT1, 0.0)
            sn = pdcp.submit(packet)
            assert sn == i
            assert packet.payload_info["pdcp_sn"] == i
        assert len(submitted) == 3


class TestF1U:
    def test_downlink_sdu_arrives_after_latency(self, sim, five_tuple):
        received = []
        f1u = F1UInterface(sim, latency=0.001)
        f1u.connect_du(lambda *args: received.append((sim.now, args)))
        packet = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
        f1u.send_downlink_sdu(0, 1, 5, packet)
        sim.run()
        assert len(received) == 1
        assert received[0][0] == pytest.approx(0.001)
        assert received[0][1][2] == 5

    def test_status_report_reaches_cu(self, sim):
        reports = []
        f1u = F1UInterface(sim, latency=0.001)
        f1u.connect_cu(reports.append)
        f1u.send_delivery_status(DeliveryStatus(0, 1, 7, 3, 0.0))
        sim.run()
        assert reports[0].highest_txed_sn == 7

    def test_downlink_without_du_raises(self, sim, five_tuple):
        f1u = F1UInterface(sim)
        packet = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
        with pytest.raises(RuntimeError):
            f1u.send_downlink_sdu(0, 1, 0, packet)

    def test_status_without_cu_is_dropped_silently(self, sim):
        f1u = F1UInterface(sim)
        f1u.send_delivery_status(DeliveryStatus(0, 1, 1, None, 0.0))
        assert f1u.status_messages == 0


class TestAirInterface:
    def test_all_blocks_resolve(self, sim):
        air = AirInterface(sim, AirInterfaceConfig(target_bler=0.2))
        outcomes = []
        for _ in range(200):
            air.transmit(0, on_delivered=lambda t: outcomes.append("ok"),
                         on_failed=lambda t: outcomes.append("fail"))
        sim.run()
        assert len(outcomes) == 200
        assert outcomes.count("ok") > 150

    def test_zero_bler_never_fails_or_retransmits(self, sim):
        air = AirInterface(sim, AirInterfaceConfig(target_bler=0.0))
        delivered = []
        for _ in range(50):
            air.transmit(0, on_delivered=delivered.append,
                         on_failed=lambda t: pytest.fail("unexpected failure"))
        sim.run()
        assert len(delivered) == 50
        assert air.harq_retransmissions == 0

    def test_harq_adds_delay(self, sim):
        config = AirInterfaceConfig(target_bler=0.9, delivery_jitter=0.0)
        air = AirInterface(sim, config)
        times = []
        for _ in range(50):
            air.transmit(0, on_delivered=times.append, on_failed=times.append)
        sim.run()
        # With 90% BLER most blocks need several HARQ rounds.
        assert max(times) > config.base_delay + config.harq_rtt


class TestMacScheduler:
    def _scheduler_with_ues(self, sim, num_ues, policy, backlogs):
        cell = CellConfig()
        scheduler = MacScheduler(sim, cell, policy=policy)
        pulls = {ue: [] for ue in range(num_ues)}

        def make_pull(ue):
            def pull(grant):
                pulls[ue].append(grant)
                return min(grant, backlogs[ue])
            return pull

        for ue in range(num_ues):
            scheduler.register_ue(ue, StaticChannel(snr_db=22),
                                  backlog_bytes=lambda ue=ue: backlogs[ue],
                                  pull=make_pull(ue))
        return scheduler, pulls

    def test_round_robin_splits_grants_evenly(self, sim):
        backlogs = {0: 10**7, 1: 10**7}
        scheduler, pulls = self._scheduler_with_ues(
            sim, 2, SchedulerPolicy.ROUND_ROBIN, backlogs)
        sim.run(until=0.05)
        scheduler.stop()
        total0, total1 = sum(pulls[0]), sum(pulls[1])
        assert total0 > 0 and total1 > 0
        assert abs(total0 - total1) / max(total0, total1) < 0.1

    def test_idle_ues_are_not_scheduled(self, sim):
        backlogs = {0: 10**7, 1: 0}
        scheduler, pulls = self._scheduler_with_ues(
            sim, 2, SchedulerPolicy.ROUND_ROBIN, backlogs)
        sim.run(until=0.05)
        scheduler.stop()
        assert sum(pulls[1]) == 0
        assert sum(pulls[0]) > 0

    def test_single_ue_gets_near_cell_capacity(self, sim):
        backlogs = {0: 10**9}
        scheduler, pulls = self._scheduler_with_ues(
            sim, 1, SchedulerPolicy.ROUND_ROBIN, backlogs)
        sim.run(until=1.0)
        scheduler.stop()
        rate_mbps = sum(pulls[0]) * 8 / 1e6
        assert 25 <= rate_mbps <= 55

    def test_proportional_fair_serves_all_backlogged_ues(self, sim):
        backlogs = {ue: 10**7 for ue in range(4)}
        scheduler, pulls = self._scheduler_with_ues(
            sim, 4, SchedulerPolicy.PROPORTIONAL_FAIR, backlogs)
        sim.run(until=0.2)
        scheduler.stop()
        assert all(sum(pulls[ue]) > 0 for ue in range(4))

    def test_throughput_report_covers_all_ues(self, sim):
        backlogs = {0: 10**7, 1: 10**7}
        scheduler, _ = self._scheduler_with_ues(
            sim, 2, SchedulerPolicy.ROUND_ROBIN, backlogs)
        sim.run(until=0.05)
        scheduler.stop()
        report = scheduler.throughput_report()
        assert set(report) == {0, 1}
