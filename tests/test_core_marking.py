"""Tests for the three marking probability rules (paper Eq. 1, Eq. 2, §4.2.3)."""

from __future__ import annotations

import math

import pytest

from repro.core.marking import (classic_mark_probability,
                                coupled_l4s_probability, l4s_mark_probability,
                                tcp_model_constant)
from repro.units import mbps, ms


class TestL4sMarking:
    RATE = mbps(40)

    def test_probability_is_half_at_threshold(self):
        # Predicted sojourn exactly equal to tau_s -> p = 0.5.
        queued = self.RATE * ms(10)
        p = l4s_mark_probability(queued, self.RATE, 0.2 * self.RATE, ms(10))
        assert p == pytest.approx(0.5, abs=1e-6)

    def test_monotone_in_queue_depth(self):
        probabilities = [l4s_mark_probability(q, self.RATE, 0.2 * self.RATE,
                                              ms(10))
                         for q in range(0, 200_000, 10_000)]
        assert all(b >= a for a, b in zip(probabilities, probabilities[1:]))

    def test_zero_error_reduces_to_step(self):
        below = l4s_mark_probability(self.RATE * ms(5), self.RATE, 0.0, ms(10))
        above = l4s_mark_probability(self.RATE * ms(20), self.RATE, 0.0, ms(10))
        assert below == 0.0
        assert above == 1.0

    def test_larger_error_softens_the_edge(self):
        queued = self.RATE * ms(20)  # sojourn twice the threshold
        sharp = l4s_mark_probability(queued, self.RATE, 0.1 * self.RATE, ms(10))
        flat = l4s_mark_probability(queued, self.RATE, 0.5 * self.RATE, ms(10))
        assert sharp > flat  # volatile channel -> less aggressive above threshold
        queued_low = self.RATE * ms(5)
        sharp_low = l4s_mark_probability(queued_low, self.RATE,
                                         0.1 * self.RATE, ms(10))
        flat_low = l4s_mark_probability(queued_low, self.RATE,
                                        0.5 * self.RATE, ms(10))
        assert flat_low > sharp_low  # ... and more cautious below it

    def test_empty_queue_never_marks(self):
        assert l4s_mark_probability(0, self.RATE, 0.5 * self.RATE, ms(10)) == 0.0

    def test_zero_rate_estimate_marks(self):
        assert l4s_mark_probability(10_000, 0.0, 0.0, ms(10)) == 1.0

    def test_probability_bounded(self):
        for queued in (0, 1_000, 100_000, 10_000_000):
            p = l4s_mark_probability(queued, self.RATE, 0.3 * self.RATE, ms(10))
            assert 0.0 <= p <= 1.0


class TestClassicMarking:
    def test_reno_constant(self):
        assert tcp_model_constant(0.5) == pytest.approx(math.sqrt(1.5), rel=1e-6)

    def test_constant_grows_with_beta(self):
        assert tcp_model_constant(0.7) > tcp_model_constant(0.5)

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError):
            tcp_model_constant(1.0)
        with pytest.raises(ValueError):
            tcp_model_constant(0.0)

    def test_probability_matches_throughput_model(self):
        # Inverting Eq. 2: a Reno flow marked with p achieves MSS*K/(RTT*sqrt(p)).
        mss, rtt, rate = 1440, 0.05, mbps(2.5)
        p = classic_mark_probability(mss, rtt, rate)
        achieved = mss * tcp_model_constant(0.5) / (rtt * math.sqrt(p))
        assert achieved == pytest.approx(rate, rel=1e-6)

    def test_higher_rate_means_lower_probability(self):
        low = classic_mark_probability(1440, 0.05, mbps(1))
        high = classic_mark_probability(1440, 0.05, mbps(30))
        assert high < low

    def test_higher_rtt_means_lower_probability(self):
        near = classic_mark_probability(1440, 0.038, mbps(5))
        far = classic_mark_probability(1440, 0.106, mbps(5))
        assert far < near

    def test_probability_clamped_to_one(self):
        assert classic_mark_probability(1440, 0.001, 1000.0) == 1.0

    def test_zero_rate_or_rtt_gives_zero(self):
        assert classic_mark_probability(1440, 0.0, mbps(1)) == 0.0
        assert classic_mark_probability(1440, 0.05, 0.0) == 0.0


class TestCoupledMarking:
    def test_coupling_balances_throughputs(self):
        # With p_l4s = (2/K) sqrt(p_classic), the model throughputs
        # 2*MSS/(RTT*p_l4s) and MSS*K/(RTT*sqrt(p_classic)) coincide.
        p_classic = 0.01
        p_l4s = coupled_l4s_probability(p_classic, beta=0.5)
        mss, rtt = 1440, 0.05
        r_l4s = 2 * mss / (rtt * p_l4s)
        r_classic = mss * tcp_model_constant(0.5) / (rtt * math.sqrt(p_classic))
        assert r_l4s == pytest.approx(r_classic, rel=1e-6)

    def test_monotone_in_classic_probability(self):
        values = [coupled_l4s_probability(p) for p in (0.001, 0.01, 0.1, 0.5)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_zero_classic_gives_zero(self):
        assert coupled_l4s_probability(0.0) == 0.0

    def test_clamped_to_one(self):
        assert coupled_l4s_probability(1.0) <= 1.0
