"""Engine backend registry and cross-backend equivalence contract.

The ``numpy`` backend replaces the profiled per-slot hot loops (MAC slot
clock on the timer wheel, blocked channel draws, blocked air-interface
uniforms) but must not change *what* is simulated: on static channels the
per-flow metrics are bit-identical to the ``python`` backend, across
repeats and shard counts.  On fading channels the drift is confined to the
channel stream's documented block-reordering; each backend remains
individually deterministic.  These tests pin that contract.
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest

import repro._numpy
from repro.experiments.presets import make_preset
from repro.experiments.scenario import run_scenario
from repro.experiments.sharded import run_scenario_sharded
from repro.experiments.spec import EngineSpec, ScenarioSpec
from repro.sim import backends
from repro.sim.backends import (ENGINE_BACKENDS, EngineBackend,
                                default_engine_name, make_engine_backend)

numpy_missing = not repro._numpy.numpy_available()
needs_numpy = pytest.mark.skipif(numpy_missing, reason="numpy not installed")


def with_engine(spec: ScenarioSpec, backend: str) -> ScenarioSpec:
    return dataclasses.replace(
        spec, engine=dataclasses.replace(spec.engine, backend=backend))


def flow_fingerprint(result) -> list:
    """Everything per-flow that must match bit-for-bit across backends."""
    return sorted(
        (flow.flow_id, flow.ue_id, flow.goodput_bytes_per_s,
         flow.congestion_events, flow.marked_fraction,
         len(flow.owd_samples), tuple(flow.owd_samples[-64:]),
         tuple(flow.rtt_samples[-64:]))
        for flow in result.flows)


def _force_vector_paths(monkeypatch) -> None:
    """Drop the scalar/vector crossover so tiny scenarios hit the numpy
    allocation paths the thresholds would otherwise route around."""
    from repro.ran import mac
    monkeypatch.setattr(mac, "_VECTOR_MIN_UES_RR", 1)
    monkeypatch.setattr(mac, "_VECTOR_MIN_UES_PF", 1)


# --------------------------------------------------------------------- #
# Registry and spec plumbing
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_registered_names(self):
        names = ENGINE_BACKENDS.names(include_aliases=True)
        for name in ("python", "py", "numpy", "np"):
            assert name in names

    def test_aliases_resolve_to_primary(self):
        assert ENGINE_BACKENDS.resolve("py") == "python"
        assert ENGINE_BACKENDS.resolve("np") == "numpy"

    def test_python_backend_is_default_and_not_vectorized(self, monkeypatch):
        monkeypatch.delenv(backends.ENGINE_ENV, raising=False)
        assert default_engine_name() == "python"
        backend = make_engine_backend()
        assert isinstance(backend, EngineBackend)
        assert not backend.vectorized

    @needs_numpy
    def test_numpy_backend_is_vectorized(self):
        backend = make_engine_backend("np", channel_block=32)
        assert backend.name == "numpy"
        assert backend.vectorized
        assert backend.channel_block == 32

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError):
            make_engine_backend("fortran")

    def test_env_default_selects_backend(self, monkeypatch):
        monkeypatch.setenv(backends.ENGINE_ENV, "py")
        assert default_engine_name() == "python"
        if not numpy_missing:
            monkeypatch.setenv(backends.ENGINE_ENV, "np")
            assert default_engine_name() == "numpy"

    def test_env_numpy_without_numpy_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(backends.ENGINE_ENV, "numpy")
        monkeypatch.setattr(repro._numpy, "np", None)
        monkeypatch.setattr(backends, "numpy_available", lambda: False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert default_engine_name() == "python"
        assert any("falling back" in str(w.message) for w in caught)

    def test_numpy_backend_requires_numpy(self, monkeypatch):
        monkeypatch.setattr(repro._numpy, "np", None)
        with pytest.raises(RuntimeError, match="numpy"):
            make_engine_backend("numpy")


class TestEngineSpec:
    def test_round_trips_through_dict(self):
        spec = ScenarioSpec(name="rt", num_ues=1, duration_s=0.1,
                            engine=EngineSpec(backend="numpy",
                                              channel_block=64))
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again.engine.backend == "numpy"
        assert again.engine.channel_block == 64

    def test_unset_backend_inherits_environment(self, monkeypatch):
        monkeypatch.delenv(backends.ENGINE_ENV, raising=False)
        assert EngineSpec().resolved_backend() == "python"
        monkeypatch.setenv(backends.ENGINE_ENV, "py")
        assert EngineSpec().resolved_backend() == "python"

    def test_validate_rejects_unknown_backend(self):
        with pytest.raises(KeyError):
            EngineSpec(backend="cuda").validate()

    def test_validate_rejects_bad_block(self):
        with pytest.raises(ValueError, match="channel_block"):
            EngineSpec(channel_block=0).validate()

    def test_spec_validate_covers_engine_block(self):
        spec = ScenarioSpec(name="bad", num_ues=1, duration_s=0.1,
                            engine=EngineSpec(backend="cuda"))
        with pytest.raises(KeyError):
            spec.validate()


# --------------------------------------------------------------------- #
# Bit-identical static-channel metrics
# --------------------------------------------------------------------- #
def _static_cases() -> dict:
    dense = make_preset("dense-cell")
    return {
        "dense-rr": dataclasses.replace(dense, duration_s=1.5),
        "dense-pf": dataclasses.replace(dense, duration_s=1.5,
                                        scheduler="pf"),
        "multi-ue-rr": ScenarioSpec(
            name="multi-ue-rr", num_ues=4, duration_s=1.0,
            channel_profile="static", seed=7, marker="l4span"),
        "multi-ue-pf": ScenarioSpec(
            name="multi-ue-pf", num_ues=4, duration_s=1.0,
            channel_profile="static", seed=7, marker="l4span",
            scheduler="pf", cc_name="cubic"),
    }


@needs_numpy
@pytest.mark.parametrize("case", sorted(_static_cases()))
def test_static_metrics_bit_identical(case, monkeypatch):
    _force_vector_paths(monkeypatch)
    spec = _static_cases()[case]
    reference = run_scenario(with_engine(spec, "python"))
    vectorized = run_scenario(with_engine(spec, "numpy"))
    assert flow_fingerprint(vectorized) == flow_fingerprint(reference)
    assert vectorized.events_processed == reference.events_processed


@needs_numpy
def test_static_metrics_identical_across_repeats(monkeypatch):
    _force_vector_paths(monkeypatch)
    spec = with_engine(dataclasses.replace(make_preset("dense-cell"),
                                           duration_s=1.0), "numpy")
    first = run_scenario(spec)
    second = run_scenario(spec)
    assert flow_fingerprint(first) == flow_fingerprint(second)


@needs_numpy
@pytest.mark.parametrize("shards", [2, 4])
def test_static_metrics_identical_across_shards(shards):
    spec = with_engine(dataclasses.replace(make_preset("eight-cell"),
                                           duration_s=1.0), "numpy")
    single = run_scenario(spec)
    sharded = run_scenario_sharded(spec, shards=shards, inprocess=True)
    assert flow_fingerprint(sharded) == flow_fingerprint(single)


# --------------------------------------------------------------------- #
# Fading channels: per-backend determinism (documented stream drift)
# --------------------------------------------------------------------- #
@needs_numpy
@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_fading_backend_deterministic(backend):
    spec = with_engine(
        ScenarioSpec(name="fade", num_ues=2, duration_s=1.0, seed=11,
                     channel_profile="pedestrian", marker="l4span"),
        backend)
    first = run_scenario(spec)
    second = run_scenario(spec)
    assert flow_fingerprint(first) == flow_fingerprint(second)
