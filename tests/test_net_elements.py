"""Tests for queues, links, pipes and the bottleneck router."""

from __future__ import annotations

from repro.net.base import CollectorSink, NullSink, Tap
from repro.net.ecn import ECN
from repro.net.link import Link
from repro.net.packet import make_data_packet
from repro.net.pipe import DelayPipe, VariableDelayPipe
from repro.net.queueing import DropTailQueue
from repro.net.router import BottleneckRouter
from repro.units import mbps


def _packet(five_tuple, seq=0, payload=1000):
    return make_data_packet(0, five_tuple, seq, payload, ECN.ECT1, 0.0)


class TestDropTailQueue:
    def test_fifo_order(self, five_tuple):
        queue = DropTailQueue()
        first, second = _packet(five_tuple, 0), _packet(five_tuple, 1000)
        queue.enqueue(first)
        queue.enqueue(second)
        assert queue.dequeue() is first
        assert queue.dequeue() is second
        assert queue.dequeue() is None

    def test_packet_limit_drops_excess(self, five_tuple):
        queue = DropTailQueue(max_packets=2)
        assert queue.enqueue(_packet(five_tuple))
        assert queue.enqueue(_packet(five_tuple))
        assert not queue.enqueue(_packet(five_tuple))
        assert queue.dropped_packets == 1

    def test_byte_limit_drops_excess(self, five_tuple):
        queue = DropTailQueue(max_bytes=1500)
        assert queue.enqueue(_packet(five_tuple, payload=1000))
        assert not queue.enqueue(_packet(five_tuple, payload=1000))

    def test_byte_accounting(self, five_tuple):
        queue = DropTailQueue()
        packet = _packet(five_tuple, payload=1000)
        queue.enqueue(packet)
        assert queue.bytes == packet.size
        queue.dequeue()
        assert queue.bytes == 0

    def test_clear(self, five_tuple):
        queue = DropTailQueue()
        queue.enqueue(_packet(five_tuple))
        queue.clear()
        assert queue.empty and queue.bytes == 0


class TestDelayPipe:
    def test_delivers_after_fixed_delay(self, sim, five_tuple):
        sink = CollectorSink()
        pipe = DelayPipe(sim, 0.25, sink=sink)
        pipe.receive(_packet(five_tuple))
        sim.run(until=0.2)
        assert len(sink) == 0
        sim.run(until=0.3)
        assert len(sink) == 1

    def test_zero_delay_delivers_immediately(self, sim, five_tuple):
        sink = CollectorSink()
        DelayPipe(sim, 0.0, sink=sink).receive(_packet(five_tuple))
        assert len(sink) == 1

    def test_variable_pipe_avoids_reordering(self, sim, five_tuple):
        sink = CollectorSink()
        pipe = VariableDelayPipe(sim, 0.5, sink=sink)
        first = _packet(five_tuple, 0)
        pipe.receive(first)
        pipe.delay = 0.1
        second = _packet(five_tuple, 1000)
        pipe.receive(second)
        sim.run()
        assert sink.received == [first, second]


class TestLink:
    def test_serialization_delay_matches_rate(self, sim, five_tuple):
        sink = CollectorSink()
        link = Link(sim, rate=10_000, sink=sink)  # 10 kB/s
        link.receive(_packet(five_tuple, payload=960))  # 1000 B total
        sim.run()
        assert len(sink) == 1
        assert abs(sim.now - 0.1) < 1e-9

    def test_back_to_back_packets_queue(self, sim, five_tuple):
        sink = CollectorSink()
        link = Link(sim, rate=10_000, sink=sink)
        link.receive(_packet(five_tuple, 0, payload=960))
        link.receive(_packet(five_tuple, 1000, payload=960))
        sim.run(until=0.15)
        assert len(sink) == 1
        sim.run(until=0.25)
        assert len(sink) == 2

    def test_propagation_delay_added_after_serialization(self, sim, five_tuple):
        sink = CollectorSink()
        link = Link(sim, rate=10_000, delay=1.0, sink=sink)
        link.receive(_packet(five_tuple, payload=960))
        sim.run(until=1.05)
        assert len(sink) == 0
        sim.run(until=1.2)
        assert len(sink) == 1

    def test_queue_limit_drops(self, sim, five_tuple):
        link = Link(sim, rate=1_000, sink=NullSink(), queue_packets=1)
        for i in range(5):
            link.receive(_packet(five_tuple, i * 1000))
        assert link.queue.dropped_packets >= 2


class TestBottleneckRouter:
    def test_throttling_builds_queue(self, sim, five_tuple):
        sink = NullSink()
        router = BottleneckRouter(sim, rate=mbps(100), sink=sink)
        router.set_rate(mbps(0.1))
        for i in range(20):
            router.receive(_packet(five_tuple, i * 1000))
        sim.run(until=0.1)
        assert router.queued_bytes > 0

    def test_tap_observes_packets(self, sim, five_tuple):
        seen = []
        sink = CollectorSink()
        tap = Tap(seen.append, sink=sink)
        tap.receive(_packet(five_tuple))
        assert len(seen) == 1 and len(sink) == 1
