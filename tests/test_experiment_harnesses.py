"""Smoke tests for every per-figure experiment harness (tiny configurations)."""

from __future__ import annotations

import math

import pytest

from repro.experiments.ablations import AblationConfig, marking_strategy_ablation, window_sweep
from repro.experiments.fig02_motivation import Fig2Config, run_fig2
from repro.experiments.fig09_tcp_sweep import (SweepConfig, improvement_table,
                                               run_fig9)
from repro.experiments.fig10_breakdown import BreakdownConfig, run_fig10
from repro.experiments.fig11_short_flows import ShortFlowConfig, run_fig11
from repro.experiments.fig12_tcran import (TcRanComparisonConfig, run_fig12,
                                           throughput_improvement)
from repro.experiments.fig13_interactive import InteractiveConfig, run_fig13
from repro.experiments.fig14_fairness import FairnessConfig, jain_index, run_fig14
from repro.experiments.fig15_shortcircuit import ShortCircuitConfig, run_fig15
from repro.experiments.fig16_shared_drb import SharedDrbConfig, run_shared_drb_case
from repro.experiments.fig17_queue_cdf import QueueCdfConfig, run_fig17
from repro.experiments.fig18_coherence import CoherenceConfig, run_fig18
from repro.experiments.fig19_threshold import ThresholdSweepConfig, run_fig19
from repro.experiments.fig20_rate_error import RateErrorConfig, run_fig20
from repro.experiments.fig21_processing import ProcessingConfig, run_fig21
from repro.experiments.table1_overhead import (OverheadConfig, overhead_summary,
                                               run_table1)

pytestmark = pytest.mark.filterwarnings("ignore")


def test_fig2_motivation_shapes():
    result = run_fig2(Fig2Config(duration_s=4.0, bottleneck_shift=False))
    rows = result.rows()
    panels = {row["panel"] for row in rows}
    assert panels == {"wired+dualpi2", "5g", "5g+l4span"}
    plain = next(r for r in rows if r["panel"] == "5g" and r["cc"] == "prague")
    spanned = next(r for r in rows
                   if r["panel"] == "5g+l4span" and r["cc"] == "prague")
    assert spanned["rtt_ms"] < plain["rtt_ms"]


def test_fig9_sweep_and_improvement_table():
    cells = run_fig9(SweepConfig(cc_names=("prague",), channels=("static",),
                                 ue_counts=(2,), duration_s=3.0))
    assert len(cells) == 2
    rows = improvement_table(cells)
    assert len(rows) == 1
    assert rows[0]["owd_reduction_pct"] > 50


def test_fig10_breakdown_rows():
    rows = run_fig10(BreakdownConfig(schedulers=("rr",), ue_counts=(2,),
                                     duration_s=2.5))
    assert len(rows) == 2
    for row in rows:
        assert row["total_ms"] > 0
        assert row["queuing_ms"] >= 0


def test_fig11_short_flow_rows():
    rows = run_fig11(ShortFlowConfig(cc_names=("prague",), duration_s=5.0,
                                     slf_start=2.5))
    assert len(rows) == 2
    l4span_row = next(r for r in rows if r["l4span"])
    assert l4span_row["slf_finish_time_ms"] is not None


def test_fig12_tcran_comparison():
    rows = run_fig12(TcRanComparisonConfig(cc_names=("prague",),
                                           channels=("static",),
                                           duration_s=3.0))
    assert len(rows) == 2
    improvements = throughput_improvement(rows)
    assert len(improvements) == 1


def test_fig13_interactive_rows():
    rows = run_fig13(InteractiveConfig(cc_names=("scream",),
                                       channels=("static",), num_ues=2,
                                       duration_s=3.0))
    assert len(rows) == 2
    assert all(row["per_ue_tput_mbps"] > 0 for row in rows)


def test_fig14_fairness_panels():
    panels = run_fig14(FairnessConfig(duration_s=5.0, stagger_s=1.0))
    assert len(panels) == 4
    for panel in panels:
        assert 0.0 <= panel.fairness_index <= 1.0
    assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
    assert jain_index([1.0, 0.0, 0.0]) == pytest.approx(1 / 3)


def test_fig15_shortcircuit_rows():
    rows = run_fig15(ShortCircuitConfig(cc_names=("prague",), duration_s=3.0))
    assert len(rows) == 2
    with_sc = next(r for r in rows if r["shortcircuit"])
    without_sc = next(r for r in rows if not r["shortcircuit"])
    assert with_sc["shortcircuited_acks"] > 0
    assert without_sc["shortcircuited_acks"] == 0


def test_fig16_shared_drb_coupled_strategy():
    row = run_shared_drb_case("l4span", SharedDrbConfig(duration_s=4.0))
    assert 0.0 <= row["l4s_throughput_share"] <= 1.0
    assert row["l4s_tput_mbps"] > 0
    assert row["classic_tput_mbps"] > 0


def test_fig17_queue_cdf_rows():
    rows = run_fig17(QueueCdfConfig(cc_names=("prague",), channels=("static",),
                                    num_ues=2, duration_s=3.0))
    assert len(rows) == 1
    assert rows[0]["queue_summary"]["count"] > 0


def test_fig18_coherence_validates_window_choice():
    rows = run_fig18(CoherenceConfig(duration_s=20.0))
    assert len(rows) == 2
    for row in rows:
        assert row["num_periods"] > 10
        assert row["fraction_above_window"] > 0.9


def test_fig19_threshold_sweep_shape():
    rows = run_fig19(ThresholdSweepConfig(thresholds_ms=(1.0, 10.0, 100.0),
                                          duration_s=3.0))
    assert len(rows) == 3
    by_threshold = {row["threshold_ms"]: row for row in rows}
    # A tiny threshold sacrifices throughput; a huge one sacrifices latency.
    assert by_threshold[100.0]["rate_sum_mbps"] >= \
        by_threshold[1.0]["rate_sum_mbps"] * 0.9
    assert by_threshold[1.0]["rtt_mean_ms"] <= \
        by_threshold[100.0]["rtt_mean_ms"] * 1.5


def test_fig20_rate_error_rows():
    rows = run_fig20(RateErrorConfig(channels=("static",), num_ues=2,
                                     duration_s=3.0))
    assert len(rows) == 1
    assert rows[0]["error_summary"]["count"] > 0
    assert abs(rows[0]["error_summary"]["median"]) < 50.0


def test_fig21_processing_rows():
    rows = run_fig21(ProcessingConfig(num_ues=2, duration_s=2.0))
    events = {row["event"] for row in rows}
    assert events == {"downlink", "uplink", "feedback"}
    for row in rows:
        if row["count"]:
            assert row["median_us"] > 0


def test_table1_overhead_rows():
    rows = run_table1(OverheadConfig(busy_ues=2, duration_s=1.5))
    assert len(rows) == 4
    summary = overhead_summary(rows)
    assert {row["state"] for row in summary} == {"idle", "busy"}


def test_marking_strategy_ablation_rows():
    rows = marking_strategy_ablation(AblationConfig(duration_s=3.0,
                                                    channel="static"))
    markers = {row["marker"] for row in rows}
    assert "l4span" in markers and "ran_dualpi2" in markers
    l4span_row = next(r for r in rows if r["marker"] == "l4span")
    none_row = next(r for r in rows if r["marker"] == "none")
    assert l4span_row["owd_median_ms"] < none_row["owd_median_ms"]


def test_window_sweep_rows():
    rows = window_sweep(AblationConfig(duration_s=2.5, channel="static"),
                        windows_ms=(6.0, 12.45))
    assert len(rows) == 2
    assert all(not math.isnan(row["owd_median_ms"]) for row in rows)
