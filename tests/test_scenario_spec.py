"""Tests for the declarative spec layer: registries, serialization, presets,
heterogeneous (multi-cell / per-UE / per-flow) scenarios and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.experiments.presets import make_preset, preset_names
from repro.experiments.scenario import build_scenario, run_scenario
from repro.experiments.spec import (CellSpec, PopulationSpec, ScenarioSpec,
                                    UeSpec)
from repro.ran.cell import CellConfig
from repro.registry import (CC_SENDERS, CHANNEL_PROFILES, MARKERS, Registry,
                            SCENARIO_PRESETS, SCHEDULERS,
                            UnknownComponentError)
from repro.units import ms
from repro.workloads.flows import FlowSpec

pytestmark = pytest.mark.filterwarnings("ignore")


# --------------------------------------------------------------------------- #
# Registry mechanics
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("widget")

        @reg.register("foo", "foo_alias", shiny=True)
        class Foo:
            pass

        assert reg.get("foo") is Foo
        assert reg.get("FOO") is Foo
        assert reg.get("foo_alias") is Foo
        assert reg.flag("foo", "shiny") is True
        assert reg.flag("foo", "missing") is False
        assert reg.names() == ["foo"]
        assert reg.names(include_aliases=True) == ["foo", "foo_alias"]
        assert "foo" in reg and "bar" not in reg

    def test_unknown_name_raises_with_choices(self):
        reg = Registry("widget")
        reg.add("foo", object())
        with pytest.raises(UnknownComponentError) as exc_info:
            reg.get("bar")
        assert "widget" in str(exc_info.value)
        assert "foo" in str(exc_info.value)
        # Compatible with both historical factory error types.
        with pytest.raises(KeyError):
            reg.get("bar")
        with pytest.raises(ValueError):
            reg.get("bar")

    def test_duplicate_registration_rejected(self):
        reg = Registry("widget")
        reg.add("foo", object(), "alias")
        with pytest.raises(ValueError, match="duplicate"):
            reg.add("foo", object())
        with pytest.raises(ValueError, match="duplicate"):
            reg.add("alias", object())

    def test_names_where(self):
        reg = Registry("widget")
        reg.add("a", object(), fast=True)
        reg.add("b", object())
        assert reg.names_where("fast") == ["a"]


class TestComponentRegistries:
    def test_all_paper_components_registered(self):
        for name in ("prague", "cubic", "reno", "bbr", "bbr2", "scream",
                     "udp_prague"):
            assert name in CC_SENDERS
        for name in ("none", "l4span", "tcran", "ran_dualpi2",
                     "ran_dualpi2_10ms"):
            assert name in MARKERS
        for name in ("static", "pedestrian", "vehicular", "mobile"):
            assert name in CHANNEL_PROFILES
        for name in ("rr", "pf", "round_robin", "proportional_fair"):
            assert name in SCHEDULERS

    def test_l4s_flags_match_paper(self):
        assert set(CC_SENDERS.names_where("is_l4s")) == \
            {"prague", "bbr2", "scream", "udp_prague"}
        assert set(CC_SENDERS.names_where("is_udp")) == \
            {"scream", "udp_prague"}

    def test_buildable_markers_are_selectable(self):
        # The CLI drift bug: ran_dualpi2_10ms was buildable but not offered.
        from repro.core.factory import marker_names
        assert "ran_dualpi2_10ms" in marker_names()


# --------------------------------------------------------------------------- #
# Spec serialization
# --------------------------------------------------------------------------- #
def heterogeneous_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="hetero", num_ues=0, duration_s=2.0, marker="l4span", seed=5,
        wired_bottleneck_schedule=[(1.0, 30.0)],
        cells=[CellSpec(cell_id=0),
               CellSpec(cell_id=1, scheduler="pf",
                        radio=CellConfig(bandwidth_mhz=10.0, num_prb=24))],
        ues=[UeSpec(ue_id=0, cell_id=0, channel_profile="pedestrian"),
             UeSpec(ue_id=1, cell_id=1, mean_snr_db=18.0,
                    rlc_queue_sdus=256)],
        flows=[FlowSpec(flow_id=0, ue_id=0, cc_name="prague",
                        wan_rtt=ms(18), label="near"),
               FlowSpec(flow_id=1, ue_id=1, cc_name="cubic",
                        wan_rtt=ms(78), label="far")])


class TestSpecSerialization:
    def test_dict_round_trip_default(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_dict_round_trip_heterogeneous(self):
        spec = heterogeneous_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = heterogeneous_spec()
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        # And the JSON is plain data (no repr()-ed objects).
        json.loads(spec.to_json())

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            ScenarioSpec.from_dict({"num_uess": 3})
        with pytest.raises(ValueError, match="flows"):
            ScenarioSpec.from_dict({"flows": [{"flow_id": 0, "ue_id": 0,
                                               "cc_name": "prague",
                                               "bogus": 1}]})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec.from_json("[1, 2, 3]")

    def test_scenario_config_alias_warns_but_resolves(self):
        import repro.experiments
        import repro.experiments.scenario as scenario_module
        with pytest.warns(DeprecationWarning, match="repro.api"):
            assert scenario_module.ScenarioConfig is ScenarioSpec
        with pytest.warns(DeprecationWarning, match="repro.api"):
            assert repro.experiments.ScenarioConfig is ScenarioSpec


class TestSpecValidation:
    def test_unknown_cc_rejected(self):
        with pytest.raises(UnknownComponentError, match="congestion"):
            ScenarioSpec(cc_name="vegas").validate()

    def test_unknown_marker_rejected(self):
        with pytest.raises(UnknownComponentError, match="marker"):
            ScenarioSpec(marker="magic").validate()

    def test_unknown_channel_rejected(self):
        with pytest.raises(UnknownComponentError, match="channel"):
            ScenarioSpec(channel_profile="underwater").validate()

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(UnknownComponentError, match="scheduler"):
            ScenarioSpec(scheduler="wfq").validate()

    def test_dangling_cell_reference_rejected(self):
        with pytest.raises(ValueError, match="unknown cell"):
            ScenarioSpec(ues=[UeSpec(ue_id=0, cell_id=7)]).validate()

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate cell_id"):
            ScenarioSpec(cells=[CellSpec(0), CellSpec(0)]).validate()
        with pytest.raises(ValueError, match="duplicate ue_id"):
            ScenarioSpec(ues=[UeSpec(ue_id=1), UeSpec(ue_id=1)]).validate()
        flows = [FlowSpec(flow_id=0, ue_id=0, cc_name="prague"),
                 FlowSpec(flow_id=0, ue_id=1, cc_name="prague")]
        with pytest.raises(ValueError, match="duplicate flow_id"):
            ScenarioSpec(flows=flows).validate()

    def test_resolution_fills_defaults(self):
        spec = ScenarioSpec(num_ues=2, channel_profile="pedestrian",
                            ues=[UeSpec(ue_id=1, channel_profile="static")])
        resolved = {ue.ue_id: ue for ue in spec.resolved_ues()}
        assert resolved[0].channel_profile == "pedestrian"
        assert resolved[1].channel_profile == "static"
        flows = spec.resolved_flows()
        assert [f.ue_id for f in flows] == [0, 1]


# --------------------------------------------------------------------------- #
# The population block
# --------------------------------------------------------------------------- #
class TestPopulationSpec:
    def test_round_trip_through_dict_and_json(self):
        spec = ScenarioSpec(
            num_ues=1, population=PopulationSpec(
                n_background=250, workload="rate", mean_rate_mbps=1.5,
                cc_mix={"prague": 0.25, "cubic": 0.75},
                snr_mean_db=19.0, snr_stddev_db=4.0, activity=0.5,
                churn_rate_per_s=1.0, update_interval_s=0.01))
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.population.cc_mix == {"prague": 0.25, "cubic": 0.75}

    def test_default_population_disabled(self):
        spec = ScenarioSpec()
        assert not spec.population.enabled
        assert spec.population.n_background == 0
        spec.validate()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="n_background"):
            ScenarioSpec(
                population=PopulationSpec(n_background=-1)).validate()

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            ScenarioSpec(population=PopulationSpec(
                n_background=10, workload="voip")).validate()

    def test_rate_workload_needs_positive_rate(self):
        with pytest.raises(ValueError, match="mean_rate_mbps"):
            ScenarioSpec(population=PopulationSpec(
                n_background=10, workload="rate",
                mean_rate_mbps=0.0)).validate()

    def test_activity_bounds(self):
        with pytest.raises(ValueError, match="activity"):
            ScenarioSpec(population=PopulationSpec(
                n_background=10, activity=1.5)).validate()

    def test_unknown_cc_in_mix_rejected(self):
        with pytest.raises(UnknownComponentError, match="congestion"):
            ScenarioSpec(population=PopulationSpec(
                n_background=10, cc_mix={"vegas": 1.0})).validate()

    def test_non_positive_mix_share_rejected(self):
        with pytest.raises(ValueError, match="cc_mix"):
            ScenarioSpec(population=PopulationSpec(
                n_background=10,
                cc_mix={"prague": 0.0})).validate()


# --------------------------------------------------------------------------- #
# Presets
# --------------------------------------------------------------------------- #
class TestPresets:
    def test_all_presets_validate(self):
        assert len(preset_names()) >= 4
        for name in preset_names():
            spec = make_preset(name)
            assert isinstance(spec, ScenarioSpec)
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_preset_rejected(self):
        with pytest.raises(UnknownComponentError, match="preset"):
            SCENARIO_PRESETS.get("no-such-preset")


# --------------------------------------------------------------------------- #
# Heterogeneous scenarios end to end
# --------------------------------------------------------------------------- #
class TestHeterogeneousScenarios:
    def test_two_cell_scenario_runs_and_isolates(self):
        spec = ScenarioSpec(
            num_ues=0, duration_s=2.5, marker="l4span", seed=9,
            cells=[CellSpec(cell_id=0), CellSpec(cell_id=1)],
            ues=[UeSpec(ue_id=0, cell_id=0),
                 UeSpec(ue_id=1, cell_id=0),
                 UeSpec(ue_id=2, cell_id=1)])
        built = build_scenario(spec)
        assert set(built.gnbs) == {0, 1}
        assert built.gnbs[0].ue_ids == [0, 1]
        assert built.gnbs[1].ue_ids == [2]
        assert built.gnbs[0] is not built.gnbs[1]
        assert built.markers[0] is not built.markers[1]
        result = built.run()
        # Every UE (on both cells) carried traffic.
        assert set(result.per_ue_throughput) == {0, 1, 2}
        assert all(v > 0 for v in result.per_ue_throughput.values())
        # The queue sampler saw bearers of both cells.
        ues_sampled = {key.split("/")[0]
                       for key in result.queue_length_by_drb}
        assert {"ue0", "ue1", "ue2"} <= ues_sampled
        # A lone UE on its own cell outruns the two UEs sharing cell 0.
        assert result.per_ue_throughput[2] > result.per_ue_throughput[0]

    def test_quiet_cell_unaffected_by_congested_neighbour(self):
        lone = run_scenario(ScenarioSpec(num_ues=1, duration_s=2.0, seed=4))
        shared_core = run_scenario(ScenarioSpec(
            num_ues=0, duration_s=2.0, seed=4,
            cells=[CellSpec(cell_id=0), CellSpec(cell_id=1)],
            ues=[UeSpec(ue_id=0, cell_id=0),
                 UeSpec(ue_id=1, cell_id=1),
                 UeSpec(ue_id=2, cell_id=1),
                 UeSpec(ue_id=3, cell_id=1)]))
        # UE 0 has cell 0 to itself: its goodput should be near the lone run
        # despite three busy neighbours behind the same 5G core.
        lone_mbps = lone.flow(0).goodput_mbps
        assert shared_core.flow(0).goodput_mbps > 0.8 * lone_mbps

    def test_per_flow_wan_rtt(self):
        spec = ScenarioSpec(
            num_ues=2, duration_s=2.0, seed=6,
            flows=[FlowSpec(flow_id=0, ue_id=0, cc_name="prague",
                            wan_rtt=ms(18)),
                   FlowSpec(flow_id=1, ue_id=1, cc_name="prague",
                            wan_rtt=ms(98))])
        result = run_scenario(spec)
        near = min(result.flow(0).rtt_samples)
        far = min(result.flow(1).rtt_samples)
        # The far flow's floor includes the extra 80 ms of WAN RTT.
        assert far - near > ms(60)

    def test_mixed_channel_population(self):
        spec = ScenarioSpec(
            num_ues=2, duration_s=1.5, seed=8,
            ues=[UeSpec(ue_id=0, channel_profile="static"),
                 UeSpec(ue_id=1, channel_profile="vehicular",
                        mean_snr_db=12.0)])
        built = build_scenario(spec)
        assert built.ues[0].config.channel_profile == "static"
        assert built.ues[1].config.channel_profile == "vehicular"
        result = built.run()
        assert result.per_ue_throughput[0] > result.per_ue_throughput[1]


# --------------------------------------------------------------------------- #
# Fig. 14 panel (b): per-flow RTTs actually reach the flows
# --------------------------------------------------------------------------- #
class TestFig14DistinctRtt:
    def test_panel_flows_carry_rtts(self):
        from repro.experiments.fig14_fairness import (FairnessConfig,
                                                      _panel_flows)
        config = FairnessConfig()
        flows = _panel_flows(["prague"] * 3, config,
                             rtts=[ms(18), ms(38), ms(78)])
        assert [f.wan_rtt for f in flows] == [ms(18), ms(38), ms(78)]
        equal = _panel_flows(["prague"] * 3, config)
        assert all(f.wan_rtt is None for f in equal)


# --------------------------------------------------------------------------- #
# Parallel sweeps over spec dicts stay identical to sequential
# --------------------------------------------------------------------------- #
class TestSpecSweepDeterminism:
    def test_threshold_sweep_identical_across_worker_counts(self):
        from repro.experiments.fig19_threshold import (ThresholdSweepConfig,
                                                       run_fig19)
        config = ThresholdSweepConfig(thresholds_ms=(1.0, 10.0),
                                      duration_s=1.0)
        sequential = run_fig19(config, workers=1)
        parallel = run_fig19(config, workers=2)
        assert json.dumps(sequential, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestCli:
    def test_scenario_json_output_is_versioned_document(self, capsys):
        from repro.__main__ import main
        from repro.experiments.results import SCHEMA_VERSION, check_document
        assert main(["scenario", "--ues", "1", "--duration", "1.0",
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        check_document(document)
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["kind"] == "scenario-result"
        assert document["summary"]["total_goodput_mbps"] > 0
        assert document["spec"]["num_ues"] == 1

    def test_dump_spec_round_trips_through_spec_file(self, capsys, tmp_path):
        from repro.__main__ import main
        assert main(["scenario", "--preset", "two-cell-imbalance",
                     "--duration", "1.0", "--dump-spec"]) == 0
        dumped = capsys.readouterr().out
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(dumped)
        assert main(["scenario", "--spec", str(spec_file), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["label"] == "two-cell-imbalance"
        assert document["summary"]["total_goodput_mbps"] > 0

    def test_spec_and_preset_mutually_exclusive(self, tmp_path):
        from repro.__main__ import main
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(ScenarioSpec().to_json())
        with pytest.raises(SystemExit):
            main(["scenario", "--spec", str(spec_file),
                  "--preset", "mixed-cc"])

    def test_cli_choices_come_from_registries(self):
        # ran_dualpi2_10ms used to be buildable but not selectable.
        from repro.__main__ import main
        with pytest.raises(SystemExit):
            main(["scenario", "--marker", "not-a-marker"])
        assert main(["scenario", "--marker", "ran_dualpi2_10ms", "--ues", "1",
                     "--duration", "0.5", "--json"]) == 0

    def test_cli_accepts_registered_aliases(self, capsys):
        # Aliases (bbrv2, off, round_robin) are valid registry names and
        # must stay valid CLI choices.
        from repro.__main__ import main
        assert main(["scenario", "--cc", "bbrv2", "--marker", "off",
                     "--scheduler", "round_robin", "--ues", "1",
                     "--duration", "0.5", "--json"]) == 0
        json.loads(capsys.readouterr().out)

    def test_cc_override_applies_to_explicit_preset_flows(self, capsys):
        from repro.__main__ import main
        assert main(["scenario", "--preset", "mixed-cc", "--cc", "reno",
                     "--dump-spec"]) == 0
        spec = ScenarioSpec.from_json(capsys.readouterr().out)
        assert {flow.cc_name for flow in spec.flows} == {"reno"}

    def test_marker_override_beats_spec_l4span_alias(self, capsys, tmp_path):
        from repro.__main__ import main
        spec_file = tmp_path / "scenario.json"
        data = ScenarioSpec(l4span=True).to_dict()
        spec_file.write_text(json.dumps(data))
        assert main(["scenario", "--spec", str(spec_file),
                     "--marker", "tcran", "--dump-spec"]) == 0
        spec = ScenarioSpec.from_json(capsys.readouterr().out)
        assert spec.resolved_marker() == "tcran"
