"""Tests for the inter-cell handover subsystem and its shard coupling.

Two load-bearing properties:

* **Continuity.** A TCP flow survives a mid-transfer handover: receiver
  state transfers, queued RLC data is forwarded or flushed per the HO mode,
  and the interruption window appears as a measurable per-flow delivery
  gap.
* **Sharded exactness.** A mobility-coupled scenario on a static channel
  produces per-flow metrics identical across ``--shards 1/2/4`` — the
  windowed barrier protocol is load-bearing here (boundary exchanges happen
  every window while a UE is served away from its home shard), unlike the
  boundary-free splits the earlier sharding tests cover.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.presets import make_preset
from repro.experiments.scenario import run_scenario
from repro.experiments.sharded import (boundary_lookahead,
                                       build_shard_plan,
                                       mobility_coupling_intervals,
                                       run_scenario_sharded,
                                       schedule_commit_points,
                                       sharding_blockers)
from repro.experiments.spec import (CellSpec, HandoverSpec, MobilitySpec,
                                    ScenarioSpec, ShardingSpec, UeSpec)
from repro.ran.phy import AirInterfaceConfig
from repro.units import ms
from repro.workloads.flows import FlowSpec


def _mobility_spec(handovers, *, duration=3.0, ho_mode="forward",
                   interruption=0.020, num_cells=2, ues=None, flows=None,
                   **overrides) -> ScenarioSpec:
    if ues is None:
        ues = [UeSpec(ue_id=0, cell_id=0), UeSpec(ue_id=1, cell_id=1)]
    return ScenarioSpec(
        name="mobility-test", num_ues=0, duration_s=duration,
        marker="l4span", channel_profile="static", seed=7,
        cells=[CellSpec(cell_id=c) for c in range(num_cells)],
        ues=ues, flows=flows,
        mobility=MobilitySpec(mode="schedule", ho_mode=ho_mode,
                              interruption_s=interruption,
                              handovers=handovers),
        **overrides)


def _ping_pong(duration=3.0, **kw) -> ScenarioSpec:
    return _mobility_spec(
        [HandoverSpec(time=1.0, ue_id=0, target_cell=1),
         HandoverSpec(time=2.0, ue_id=0, target_cell=0)],
        duration=duration, **kw)


def _flows_equal(a, b) -> bool:
    return (a.flow_id == b.flow_id and a.ue_id == b.ue_id
            and a.owd_samples == b.owd_samples
            and list(a.rtt_samples) == list(b.rtt_samples)
            and a.goodput_bytes_per_s == b.goodput_bytes_per_s
            and a.completion_time == b.completion_time
            and a.congestion_events == b.congestion_events
            and a.marked_fraction == b.marked_fraction
            and a.throughput_series.points() == b.throughput_series.points())


def _results_equal(a, b) -> bool:
    assert len(a.flows) == len(b.flows)
    for fa, fb in zip(a.flows, b.flows):
        if not _flows_equal(fa, fb):
            return False
    return (a.queue_length_by_drb == b.queue_length_by_drb
            and a.per_ue_throughput == b.per_ue_throughput
            and a.handovers == b.handovers)


# --------------------------------------------------------------------- #
# Spec layer
# --------------------------------------------------------------------- #
class TestMobilitySpec:
    def test_json_round_trip(self):
        spec = _ping_pong()
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.mobility.handovers[0] == HandoverSpec(1.0, 0, 1)

    def test_handover_preset_validates_and_round_trips(self):
        spec = make_preset("handover")
        assert spec.mobility.enabled
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_unknown_target_cell_rejected(self):
        spec = _mobility_spec([HandoverSpec(time=1.0, ue_id=0,
                                            target_cell=9)])
        with pytest.raises(ValueError, match="unknown cell"):
            spec.validate()

    def test_unknown_ue_rejected(self):
        spec = _mobility_spec([HandoverSpec(time=1.0, ue_id=9,
                                            target_cell=1)])
        with pytest.raises(ValueError, match="unknown ue"):
            spec.validate()

    def test_no_op_handover_rejected(self):
        spec = _mobility_spec([HandoverSpec(time=1.0, ue_id=0,
                                            target_cell=0)])
        with pytest.raises(ValueError, match="current serving cell"):
            spec.validate()

    def test_back_to_back_faster_than_interruption_rejected(self):
        spec = _mobility_spec(
            [HandoverSpec(time=1.0, ue_id=0, target_cell=1),
             HandoverSpec(time=1.005, ue_id=0, target_cell=0)])
        with pytest.raises(ValueError, match="before.*completes"):
            spec.validate()

    def test_single_cell_mobility_rejected(self):
        spec = ScenarioSpec(
            num_ues=1, mobility=MobilitySpec(
                mode="schedule",
                handovers=[HandoverSpec(time=1.0, ue_id=0, target_cell=0)]))
        with pytest.raises(ValueError, match="at least two cells"):
            spec.validate()


# --------------------------------------------------------------------- #
# Single-loop handover execution
# --------------------------------------------------------------------- #
class TestHandoverExecution:
    def test_flow_survives_mid_transfer_handover(self):
        result = run_scenario(_ping_pong())
        flow = result.flow(0)
        # Data keeps flowing after both handovers (samples past t=2).
        assert flow.owd_samples
        assert result.config.mobility.enabled
        assert len(result.handovers) == 2
        for record in result.handovers:
            assert record["completed_at"] == pytest.approx(
                record["time"] + 0.020)
            # The interruption window is visible as a delivery gap at
            # least as long as the configured interruption.
            assert record["data_gap_s"][0] >= 0.020

    def test_handover_of_idle_ue(self):
        """A UE with no flows moves cells without touching any transport."""
        spec = _mobility_spec(
            [HandoverSpec(time=1.0, ue_id=0, target_cell=1)],
            flows=[FlowSpec(flow_id=1, ue_id=1, cc_name="prague")])
        result = run_scenario(spec)
        assert len(result.handovers) == 1
        assert result.handovers[0]["data_gap_s"] == {}
        assert result.flow(1).owd_samples  # bystander flow unaffected

    def test_handover_with_retransmissions_in_flight(self):
        """AM retransmission state is released cleanly at the detach."""
        spec = _ping_pong(air=AirInterfaceConfig(target_bler=0.5,
                                                 max_harq_attempts=2))
        result = run_scenario(spec)
        flow = result.flow(0)
        assert flow.owd_samples
        # The lossy air interface forces retransmissions; whatever was
        # queued (including retx) at t=1/t=2 was forwarded, not leaked.
        assert len(result.handovers) == 2
        forwarded = sum(r["forwarded_sdus"] for r in result.handovers)
        flushed = sum(r["flushed_sdus"] for r in result.handovers)
        assert flushed == 0
        assert forwarded >= 0

    def test_flush_mode_drops_queued_data(self):
        """With a congested source cell, flush loses SDUs and TCP recovers."""
        spec = _mobility_spec(
            [HandoverSpec(time=1.0, ue_id=0, target_cell=1)],
            ho_mode="flush", duration=2.0,
            ues=[UeSpec(ue_id=0, cell_id=0, mean_snr_db=8.0),
                 UeSpec(ue_id=1, cell_id=1)])
        result = run_scenario(spec)
        record = result.handovers[0]
        assert record["ho_mode"] == "flush"
        assert record["flushed_sdus"] > 0
        assert record["forwarded_sdus"] == 0
        # The flow still makes progress at the (faster) target cell.
        assert result.flow(0).owd_samples[-1] is not None

    def test_forward_mode_forwards_queued_data(self):
        spec = _mobility_spec(
            [HandoverSpec(time=1.0, ue_id=0, target_cell=1)],
            duration=2.0,
            ues=[UeSpec(ue_id=0, cell_id=0, mean_snr_db=8.0),
                 UeSpec(ue_id=1, cell_id=1)])
        result = run_scenario(spec)
        assert result.handovers[0]["forwarded_sdus"] > 0

    def test_um_mode_handover(self):
        spec = _ping_pong(rlc_mode="um")
        result = run_scenario(spec)
        assert result.flow(0).owd_samples
        assert len(result.handovers) == 2

    def test_three_cell_itinerary(self):
        spec = _mobility_spec(
            [HandoverSpec(time=0.8, ue_id=0, target_cell=1),
             HandoverSpec(time=1.6, ue_id=0, target_cell=2)],
            num_cells=3,
            ues=[UeSpec(ue_id=0, cell_id=0), UeSpec(ue_id=1, cell_id=1),
                 UeSpec(ue_id=2, cell_id=2)])
        result = run_scenario(spec)
        assert [r["to_cell"] for r in result.handovers] == [1, 2]
        assert result.flow(0).owd_samples

    def test_snr_triggered_handover(self):
        """A UE below the SNR threshold escapes to the next cell."""
        spec = ScenarioSpec(
            name="snr-mob", num_ues=0, duration_s=2.0, marker="l4span",
            channel_profile="static", seed=7,
            cells=[CellSpec(cell_id=0), CellSpec(cell_id=1)],
            ues=[UeSpec(ue_id=0, cell_id=0, mean_snr_db=5.0),
                 UeSpec(ue_id=1, cell_id=1)],
            mobility=MobilitySpec(mode="snr", snr_threshold_db=10.0,
                                  min_stay_s=0.5))
        result = run_scenario(spec)
        assert result.handovers, "low-SNR UE never handed over"
        assert result.handovers[0]["to_cell"] == 1
        # min_stay damps ping-pong: at most one HO per 0.5 s.
        assert len(result.handovers) <= 4


# --------------------------------------------------------------------- #
# Sharded mobility: the barrier protocol becomes load-bearing
# --------------------------------------------------------------------- #
class TestShardedMobility:
    def test_mobility_couples_the_split(self):
        spec = _ping_pong().validate()
        plan = build_shard_plan(spec, shards=2)
        intervals = mobility_coupling_intervals(spec, plan)
        assert intervals, "ping-pong itinerary must couple the shards"
        start, end = intervals[0]
        assert start == pytest.approx(1.0)
        assert end >= 2.0

    def test_metrics_identical_across_shard_counts(self):
        """The acceptance criterion: identical across --shards 1/2/4."""
        spec = _mobility_spec(
            [HandoverSpec(time=0.8, ue_id=0, target_cell=1),
             HandoverSpec(time=1.6, ue_id=0, target_cell=2),
             HandoverSpec(time=2.4, ue_id=3, target_cell=0)],
            num_cells=4, duration=3.0,
            ues=[UeSpec(ue_id=0, cell_id=0), UeSpec(ue_id=1, cell_id=1),
                 UeSpec(ue_id=2, cell_id=2), UeSpec(ue_id=3, cell_id=3)])
        single = run_scenario_sharded(spec, shards=1, inprocess=True)
        two = run_scenario_sharded(spec, shards=2, inprocess=True)
        four = run_scenario_sharded(spec, shards=4, inprocess=True)
        assert _results_equal(single, two)
        assert _results_equal(single, four)
        assert two.sharding_stats["boundary_required"]

    def test_sharded_matches_single_loop_exactly(self):
        spec = _ping_pong()
        single = run_scenario(spec)
        sharded = run_scenario_sharded(spec, shards=2, inprocess=True)
        assert _results_equal(single, sharded)
        assert single.delay_breakdown.keys() == sharded.delay_breakdown.keys()
        for key, value in single.delay_breakdown.items():
            assert sharded.delay_breakdown[key] == pytest.approx(value)

    def test_mobile_flow_marked_fraction_covers_visited_cells(self):
        """A mobile flow's marked_fraction merges every cell it visited.

        The ping-pong UE gets marked both at home and while away; reading
        only the home-cell marker's record (the historical bug) undercounts
        both the marks and the downlink packets.
        """
        from repro.core.l4span import L4SpanLayer
        from repro.experiments.scenario import build_scenario

        spec = _ping_pong()
        built = build_scenario(spec)
        result = built.run()
        per_cell = {}  # cell_id -> (marked, downlink) for flow 0
        for cell_id, marker in built.markers.items():
            assert isinstance(marker, L4SpanLayer)
            for five_tuple, record in marker.flows.items():
                if five_tuple.dst_port - 50_000 == 0:
                    per_cell[cell_id] = (record.marked_packets,
                                         record.downlink_packets)
        # The scenario must actually mark the flow in more than one cell,
        # otherwise this test would pass with the home-only bug in place.
        assert len(per_cell) == 2
        assert all(marked > 0 for marked, _ in per_cell.values())
        marked = sum(m for m, _ in per_cell.values())
        downlink = sum(d for _, d in per_cell.values())
        home_only = per_cell[0][0] / per_cell[0][1]
        assert result.flow(0).marked_fraction == marked / downlink
        assert result.flow(0).marked_fraction != home_only
        # The sharded merge performs the same cross-shard summation.
        sharded = run_scenario_sharded(spec, shards=2, inprocess=True)
        assert sharded.flow(0).marked_fraction == marked / downlink

    def test_boundary_exchanges_every_coupled_window(self):
        """≥1 real _BoundaryRouter exchange per lookahead window.

        The UE spends [0.3, 1.5] served away from its home shard, so the
        barrier loop runs almost the whole scenario and every window
        carries data packets, ACKs or handover control items.
        """
        spec = _mobility_spec(
            [HandoverSpec(time=0.3, ue_id=0, target_cell=1)],
            duration=1.5)
        sharded = run_scenario_sharded(spec, shards=2, inprocess=True)
        stats = sharded.sharding_stats
        assert stats["boundary_required"]
        assert stats["windows"] > 10
        assert stats["routed_packets"] >= stats["windows"]

    def test_adaptive_windows_fewer_barriers_same_results(self):
        spec = _ping_pong()
        adaptive = run_scenario_sharded(spec, shards=2, inprocess=True,
                                        adaptive=True)
        fixed = run_scenario_sharded(spec, shards=2, inprocess=True,
                                     adaptive=False)
        assert _results_equal(adaptive, fixed)
        assert adaptive.sharding_stats["windows"] < \
            fixed.sharding_stats["windows"]
        # Fixed cadence is ~duration/lookahead; adaptive must beat it by
        # skipping the uncoupled phases ([0, 1.0] and the drained tail).
        assert fixed.sharding_stats["windows"] >= 150
        assert adaptive.sharding_stats["windows"] <= \
            fixed.sharding_stats["windows"] * 0.6

    def test_process_synchronizer_matches_inprocess(self):
        spec = _ping_pong(duration=1.5)
        inproc = run_scenario_sharded(spec, shards=2, inprocess=True)
        procs = run_scenario_sharded(spec, shards=2, inprocess=False)
        assert _results_equal(inproc, procs)

    def test_cross_shard_transfer_between_foreign_shards(self):
        """A UE moving between two shards, neither its home, stays exact."""
        spec = _mobility_spec(
            [HandoverSpec(time=0.6, ue_id=0, target_cell=1),
             HandoverSpec(time=1.4, ue_id=0, target_cell=2)],
            num_cells=3, duration=2.0,
            ues=[UeSpec(ue_id=0, cell_id=0), UeSpec(ue_id=1, cell_id=1),
                 UeSpec(ue_id=2, cell_id=2)])
        single = run_scenario(spec)
        sharded = run_scenario_sharded(spec, shards=3, inprocess=True)
        assert _results_equal(single, sharded)

    def test_distinct_wan_rtts_stay_exact(self):
        """Per-flow WAN legs drive the boundary delivery stamps."""
        spec = _mobility_spec(
            [HandoverSpec(time=1.0, ue_id=0, target_cell=1)],
            duration=2.0,
            flows=[FlowSpec(flow_id=0, ue_id=0, cc_name="prague",
                            wan_rtt=ms(78)),
                   FlowSpec(flow_id=1, ue_id=1, cc_name="cubic",
                            wan_rtt=ms(38))])
        single = run_scenario(spec)
        sharded = run_scenario_sharded(spec, shards=2, inprocess=True)
        assert _results_equal(single, sharded)

    def test_ping_pong_back_to_back_handovers_sharded(self):
        spec = _mobility_spec(
            [HandoverSpec(time=0.6, ue_id=0, target_cell=1),
             HandoverSpec(time=0.7, ue_id=0, target_cell=0),
             HandoverSpec(time=0.8, ue_id=0, target_cell=1),
             HandoverSpec(time=0.9, ue_id=0, target_cell=0)],
            duration=1.5, interruption=0.08)
        single = run_scenario(spec)
        sharded = run_scenario_sharded(spec, shards=2, inprocess=True)
        assert len(single.handovers) == 4
        assert _results_equal(single, sharded)

    def test_snr_mobility_shards_bit_identically(self):
        """Decide-then-commit: SNR handovers (decided mid-run) no longer
        block sharding, and the decisions, commits and per-flow metrics
        match the single loop exactly."""
        spec = ScenarioSpec(
            num_ues=0, duration_s=2.0, channel_profile="static", seed=7,
            cells=[CellSpec(cell_id=0), CellSpec(cell_id=1)],
            ues=[UeSpec(ue_id=0, cell_id=0, mean_snr_db=5.0),
                 UeSpec(ue_id=1, cell_id=1)],
            mobility=MobilitySpec(mode="snr", snr_threshold_db=10.0,
                                  min_stay_s=0.5))
        assert sharding_blockers(spec) == []
        single = run_scenario(
            dataclasses.replace(spec, sharding=ShardingSpec(mode="off")))
        sharded = run_scenario_sharded(spec, shards=2, inprocess=True)
        assert single.handovers, "the low-SNR UE must actually move"
        assert single.handovers == sharded.handovers
        assert _results_equal(single, sharded)

    def test_undersized_snr_commit_lag_blocks_sharding(self):
        """An explicit commit lag below one lookahead + the longest WAN leg
        cannot reach every shard before the commit time; the split refuses
        (the single loop honours any positive lag)."""
        spec = ScenarioSpec(
            num_ues=0, duration_s=1.0, channel_profile="static", seed=7,
            cells=[CellSpec(cell_id=0), CellSpec(cell_id=1)],
            ues=[UeSpec(ue_id=0, cell_id=0, mean_snr_db=5.0),
                 UeSpec(ue_id=1, cell_id=1)],
            mobility=MobilitySpec(mode="snr", commit_lag_s=0.001))
        assert any("commit_lag_s" in reason
                   for reason in sharding_blockers(spec))
        with pytest.warns(RuntimeWarning, match="commit_lag_s"):
            result = run_scenario_sharded(spec, shards=2, inprocess=True)
        assert result.sharding_stats["fallback"] == "single-loop"

    def test_short_interruption_shards_via_commit_points(self):
        """Interruption < lookahead pins a barrier at each cross-shard
        handover time; the transfer crosses with a same-instant stamp and
        the run stays exact."""
        spec = _ping_pong(interruption=0.005)
        assert boundary_lookahead(spec) > 0.005
        assert sharding_blockers(spec) == []
        assert schedule_commit_points(
            spec.validate(), build_shard_plan(spec, shards=2)) == \
            pytest.approx([1.0, 2.0])
        single = run_scenario(spec)
        sharded = run_scenario_sharded(spec, shards=2, inprocess=True)
        assert len(sharded.handovers) == 2
        assert _results_equal(single, sharded)

    def test_handover_preset_sharded_matches_single(self):
        spec = dataclasses.replace(make_preset("handover"), duration_s=2.5)
        spec = dataclasses.replace(
            spec, mobility=dataclasses.replace(
                spec.mobility,
                handovers=[HandoverSpec(time=0.8, ue_id=0, target_cell=1),
                           HandoverSpec(time=1.6, ue_id=0, target_cell=0)]))
        single = run_scenario(spec)
        sharded = run_scenario_sharded(spec, shards=2, inprocess=True)
        assert _results_equal(single, sharded)
        assert sharded.sharding_stats["routed_packets"] > 0
