"""Tests for the unit conversion helpers."""

from __future__ import annotations

import math

from repro import units


def test_ms_and_back():
    assert units.ms(10) == 0.01
    assert units.seconds_to_ms(0.01) == 10


def test_us_and_back():
    assert units.us(250) == 0.00025
    assert math.isclose(units.seconds_to_us(0.00025), 250)


def test_mbps_roundtrip():
    assert units.mbps(8) == 1_000_000  # 8 Mbit/s == 1 MB/s
    assert math.isclose(units.to_mbps(1_000_000), 8.0)


def test_kbps_roundtrip():
    assert units.kbps(8) == 1_000
    assert math.isclose(units.to_kbps(1_000), 8.0)


def test_kib():
    assert units.kib(1) == 1024
    assert units.kib(1.5) == 1536


def test_transmission_time_normal_case():
    assert units.transmission_time(1000, 1000) == 1.0


def test_transmission_time_zero_rate_is_infinite():
    assert units.transmission_time(1000, 0) == float("inf")
