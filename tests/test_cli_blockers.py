"""One test per remaining sharding blocker: CLI note == sharding_stats.

Only three spec shapes still refuse to shard (single cell, a too-small
SNR commit lag, a mobile UE on a wrapped client address).  Each test
pins the blocker's exact message on both user-facing surfaces — the
``RuntimeWarning`` + stderr note the CLI prints and the
``result.sharding_stats["blockers"]`` list the result document carries —
so retiring or rewording a blocker has to update the tests too.
"""

from __future__ import annotations

import pytest

from repro.__main__ import main
from repro.experiments.spec import (CellSpec, HandoverSpec, MobilitySpec,
                                    ScenarioSpec, ShardingSpec, UeSpec)
from repro.experiments.scenario import run_scenario
from repro.workloads.flows import FlowSpec


def _base_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="blocker", duration_s=0.05, num_ues=0,
        channel_profile="static",
        cells=[CellSpec(cell_id=0), CellSpec(cell_id=1)],
        ues=[UeSpec(ue_id=0, cell_id=0), UeSpec(ue_id=1, cell_id=1)],
        flows=[FlowSpec(flow_id=0, ue_id=0, cc_name="prague"),
               FlowSpec(flow_id=1, ue_id=1, cc_name="prague")],
        sharding=ShardingSpec(mode="auto", shards=2))
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def _assert_blocker_everywhere(tmp_path, capsys, spec: ScenarioSpec,
                               expected_fragment: str) -> None:
    """The blocker string must match between the CLI note and the stats."""
    with pytest.warns(RuntimeWarning, match="cannot be sharded"):
        result = run_scenario(spec)
    blockers = result.sharding_stats["blockers"]
    assert result.sharding_stats["fallback"] == "single-loop"
    assert any(expected_fragment in blocker for blocker in blockers), blockers

    path = tmp_path / "spec.json"
    path.write_text(spec.to_json())
    with pytest.warns(RuntimeWarning, match="cannot be sharded"):
        code = main(["scenario", "--spec", str(path)])
    assert code == 0
    note = capsys.readouterr().err
    assert "note: spec cannot be sharded, ran on the single event loop " \
           f"instead ({'; '.join(blockers)})" in note


def test_single_cell_blocker_message(tmp_path, capsys):
    spec = _base_spec(
        cells=[CellSpec(cell_id=0)],
        ues=[UeSpec(ue_id=0, cell_id=0)],
        flows=[FlowSpec(flow_id=0, ue_id=0, cc_name="prague")])
    _assert_blocker_everywhere(tmp_path, capsys, spec,
                               "fewer than two cells")


def test_undersized_commit_lag_blocker_message(tmp_path, capsys):
    spec = _base_spec(
        mobility=MobilitySpec(mode="snr", commit_lag_s=1e-6))
    _assert_blocker_everywhere(
        tmp_path, capsys, spec,
        "mobility.commit_lag_s is below the safe minimum")


def test_wrapped_plus_mobile_blocker_message(tmp_path, capsys):
    spec = _base_spec(
        ues=[UeSpec(ue_id=0, cell_id=0), UeSpec(ue_id=1, cell_id=1),
             UeSpec(ue_id=250, cell_id=1)],
        flows=[FlowSpec(flow_id=0, ue_id=0, cc_name="prague"),
               FlowSpec(flow_id=1, ue_id=1, cc_name="prague"),
               FlowSpec(flow_id=2, ue_id=250, cc_name="prague")],
        duration_s=0.1,
        mobility=MobilitySpec(
            mode="schedule",
            handovers=[HandoverSpec(time=0.04, ue_id=250, target_cell=0)]))
    _assert_blocker_everywhere(
        tmp_path, capsys, spec,
        "a potentially mobile UE shares a wrapped client address")
