"""Tests for the packet profile table, egress estimator and sojourn predictor."""

from __future__ import annotations

import pytest

from repro.core.egress import EgressRateEstimator
from repro.core.profile_table import DrbProfile
from repro.core.sojourn import (SojournPredictor, rtt_cost_of_overestimate,
                                throughput_cost_of_underestimate)


class TestDrbProfile:
    def test_sequence_numbers_mirror_arrival_order(self):
        profile = DrbProfile()
        assert [profile.add_packet(100, i * 0.001) for i in range(5)] == \
            list(range(5))

    def test_feedback_marks_all_sns_up_to_highest(self):
        profile = DrbProfile()
        for i in range(5):
            profile.add_packet(1000, i * 0.001)
        newly = profile.on_feedback(highest_txed_sn=2,
                                    highest_delivered_sn=None, timestamp=0.01)
        assert [e.sn for e in newly] == [0, 1, 2]
        assert profile.queued_packets == 2
        assert profile.queued_bytes == 2000

    def test_repeated_feedback_is_idempotent(self):
        profile = DrbProfile()
        for i in range(3):
            profile.add_packet(1000, 0.0)
        profile.on_feedback(1, None, 0.01)
        newly = profile.on_feedback(1, None, 0.02)
        assert newly == []
        assert profile.queued_bytes == 1000

    def test_delivery_feedback_fills_delivered_time(self):
        profile = DrbProfile()
        profile.add_packet(1000, 0.0)
        profile.on_feedback(0, None, 0.01)
        profile.on_feedback(0, 0, 0.03)
        entry = profile.entry(0)
        assert entry.transmitted_time == 0.01
        assert entry.delivered_time == 0.03
        assert entry.queueing_delay() == pytest.approx(0.01)
        assert entry.retransmission_delay() == pytest.approx(0.02)

    def test_head_sojourn_of_standing_queue(self):
        profile = DrbProfile()
        profile.add_packet(1000, 0.0)
        profile.add_packet(1000, 0.005)
        profile.on_feedback(0, None, 0.006)
        assert profile.oldest_queued_entry().sn == 1
        assert profile.head_sojourn(0.02) == pytest.approx(0.015)

    def test_head_sojourn_zero_when_empty(self):
        profile = DrbProfile()
        assert profile.head_sojourn(1.0) == 0.0
        profile.add_packet(1000, 0.0)
        profile.on_feedback(0, None, 0.001)
        assert profile.head_sojourn(1.0) == 0.0

    def test_purge_keeps_standing_queue(self):
        profile = DrbProfile(horizon=0.5)
        for i in range(10):
            profile.add_packet(1000, i * 0.01)
        profile.on_feedback(4, None, 0.1)
        purged = profile.purge(now=5.0)
        assert purged == 5
        assert profile.queued_packets == 5
        assert len(profile) == 5

    def test_purge_respects_horizon(self):
        profile = DrbProfile(horizon=10.0)
        profile.add_packet(1000, 0.0)
        profile.on_feedback(0, None, 0.01)
        assert profile.purge(now=1.0) == 0

    def test_queued_bytes_never_negative(self):
        profile = DrbProfile()
        profile.add_packet(1000, 0.0)
        profile.on_feedback(5, None, 0.01)  # feedback beyond what exists
        assert profile.queued_bytes == 0

    def test_measured_queueing_delays(self):
        profile = DrbProfile()
        profile.add_packet(1000, 0.0)
        profile.add_packet(1000, 0.0)
        profile.on_feedback(1, None, 0.02)
        delays = profile.measured_queueing_delays()
        assert len(delays) == 2
        assert all(d == pytest.approx(0.02) for d in delays)


class _Entry:
    """Minimal stand-in for a ProfileEntry in estimator tests."""

    def __init__(self, transmitted_time, size):
        self.transmitted_time = transmitted_time
        self.size = size


class TestEgressRateEstimator:
    def test_constant_rate_is_recovered(self):
        estimator = EgressRateEstimator(window=0.01)
        # 1000 bytes every 1 ms -> 1 MB/s.
        estimate = None
        for i in range(1, 100):
            estimate = estimator.observe_transmissions(
                [_Entry(i * 0.001, 1000)])
        assert estimate.smoothed_rate == pytest.approx(1_000_000, rel=0.15)

    def test_error_std_small_for_constant_rate(self):
        estimator = EgressRateEstimator(window=0.01)
        for i in range(1, 200):
            estimator.observe_transmissions([_Entry(i * 0.001, 1000)])
        estimate = estimator.last_estimate
        assert estimate.error_std < 0.2 * estimate.smoothed_rate

    def test_error_std_grows_with_volatility(self):
        stable = EgressRateEstimator(window=0.01)
        volatile = EgressRateEstimator(window=0.01)
        for i in range(1, 200):
            stable.observe_transmissions([_Entry(i * 0.001, 1000)])
            # Alternate burst sizes *within* the averaging window so the
            # instantaneous-rate samples inside one window disagree.
            size = 2500 if (i // 3) % 2 == 0 else 100
            volatile.observe_transmissions([_Entry(i * 0.001, size)])
        assert volatile.last_estimate.error_std > stable.last_estimate.error_std

    def test_no_transmissions_keeps_previous_estimate(self):
        estimator = EgressRateEstimator(window=0.01)
        estimator.observe_transmissions([_Entry(0.001, 1000)])
        before = estimator.last_estimate
        after = estimator.observe_transmissions([])
        assert after is before

    def test_rate_tracks_change_after_coherence_window(self):
        estimator = EgressRateEstimator(window=0.01)
        for i in range(1, 50):
            estimator.observe_transmissions([_Entry(i * 0.001, 2000)])
        high = estimator.last_estimate.smoothed_rate
        for i in range(50, 120):
            estimator.observe_transmissions([_Entry(i * 0.001, 200)])
        low = estimator.last_estimate.smoothed_rate
        assert low < 0.5 * high

    def test_defaults_before_any_estimate(self):
        estimator = EgressRateEstimator(window=0.01)
        assert estimator.rate_or_default(123.0) == 123.0
        assert estimator.error_std_or_default(4.0) == 4.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            EgressRateEstimator(window=0.0)

    def test_welford_window_matches_direct_two_pass(self):
        """The running Welford accumulator is numerically equivalent to the
        direct ``sum()`` mean/variance passes it replaced, across a bursty
        random feed that exercises both insertion and window expiry."""
        import math
        import random

        rng = random.Random(42)
        estimator = EgressRateEstimator(window=0.01)
        window: list[tuple[float, float]] = []  # (time, instantaneous rate)
        now = 0.0
        for _ in range(500):
            now += rng.uniform(0.0002, 0.004)
            size = rng.choice((100, 1448, 2896, 40_000))
            estimate = estimator.observe_transmissions([_Entry(now, size)])
            # Direct reference: rebuild the instantaneous-rate window and
            # compute mean/std with fresh full passes.
            window.append((now, estimate.instantaneous_rate))
            window = [(t, r) for t, r in window if t > now - 0.01]
            rates = [r for _t, r in window]
            mean = sum(rates) / len(rates)
            variance = (sum((r - mean) ** 2 for r in rates) / len(rates)
                        if len(rates) > 1 else 0.0)
            assert estimate.samples_in_window == len(rates)
            assert estimate.smoothed_rate == pytest.approx(mean, rel=1e-9)
            # The std sits ~4 orders of magnitude below the mean, so a few
            # ulps of cancellation in the remove step are expected; 1e-6
            # relative is far below anything the marking rule can perceive.
            assert estimate.error_std == pytest.approx(math.sqrt(variance),
                                                       rel=1e-6, abs=1e-6)

    def test_welford_accumulator_add_remove_exact(self):
        """Unit check of the accumulator itself against statistics.pvariance."""
        import statistics

        from repro.core.egress import WindowedMeanVariance

        stats = WindowedMeanVariance()
        values = [1e7, 1.2e7, 0.3e7, 5e7, 4.99e7, 0.01e7, 2.5e7]
        for value in values:
            stats.add(value)
        for expect_window in (values[2:], values[4:]):
            while stats.count > len(expect_window):
                stats.remove(values[len(values) - stats.count])
            assert stats.mean == pytest.approx(
                statistics.fmean(expect_window), rel=1e-12)
            assert stats.variance() == pytest.approx(
                statistics.pvariance(expect_window), rel=1e-9)


class TestSojournPredictor:
    def _estimate(self, rate, err=0.0):
        from repro.core.egress import RateEstimate
        return RateEstimate(timestamp=0.0, smoothed_rate=rate,
                            instantaneous_rate=rate, error_std=err,
                            samples_in_window=5)

    def test_empty_queue_predicts_zero(self):
        prediction = SojournPredictor().predict(0, self._estimate(1e6))
        assert prediction.sojourn == 0.0

    def test_sojourn_is_queue_over_rate(self):
        prediction = SojournPredictor().predict(50_000, self._estimate(1e6))
        assert prediction.sojourn == pytest.approx(0.05)

    def test_unknown_rate_gives_pessimistic_sojourn(self):
        prediction = SojournPredictor().predict(50_000, None)
        assert prediction.sojourn == SojournPredictor.UNKNOWN_RATE_SOJOURN

    def test_confidence_flag(self):
        confident = SojournPredictor().predict(1000, self._estimate(1e6, 1e4))
        shaky = SojournPredictor().predict(1000, self._estimate(1e6, 5e5))
        assert confident.is_confident
        assert not shaky.is_confident

    def test_error_cost_model_directions(self):
        assert rtt_cost_of_overestimate(0.04, 1e6, 2e6) > 0
        assert rtt_cost_of_overestimate(0.04, 1e6, 0.5e6) == 0
        assert throughput_cost_of_underestimate(0.04, 0.01, 1e6, 0.5e6) > 0
        assert throughput_cost_of_underestimate(0.04, 0.01, 1e6, 2e6) == 0
