"""Tests for statistics, collectors and the delay breakdown."""

from __future__ import annotations

import math

import pytest

from repro.metrics.breakdown import breakdown_from_packet
from repro.metrics.collectors import (DelayBreakdownAccumulator, OwdCollector,
                                      SampleReservoir, ThroughputCollector,
                                      TimeSeries)
from repro.metrics.stats import (box_stats, cdf_points, percentile,
                                 reduction_percent, summarize)
from repro.net.ecn import ECN
from repro.net.packet import make_data_packet


class TestSampleReservoir:
    def test_below_capacity_is_exact(self):
        reservoir = SampleReservoir(100)
        reservoir.extend(range(50))
        assert list(reservoir) == list(range(50))
        assert reservoir.observed == 50

    def test_capacity_bounds_length(self):
        reservoir = SampleReservoir(64)
        reservoir.extend(range(10_000))
        assert len(reservoir) == 64
        assert reservoir.observed == 10_000
        assert all(0 <= value < 10_000 for value in reservoir)

    def test_replacement_is_deterministic(self):
        first, second = SampleReservoir(32), SampleReservoir(32)
        first.extend(range(1000))
        second.extend(range(1000))
        assert list(first) == list(second)

    def test_is_a_list(self):
        reservoir = SampleReservoir(8)
        reservoir.append(1.5)
        assert sum(reservoir) == 1.5
        assert list(reservoir) == [1.5]
        assert min(reservoir) == 1.5

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            SampleReservoir(0)

    def test_pickle_and_deepcopy_round_trip(self):
        import copy
        import pickle
        reservoir = SampleReservoir(8)
        reservoir.extend(range(20))
        for clone in (pickle.loads(pickle.dumps(reservoir)),
                      copy.deepcopy(reservoir)):
            assert list(clone) == list(reservoir)
            assert clone.capacity == 8
            assert clone.observed == 20
            clone.append(99)  # replacement stream continues identically
        twin = pickle.loads(pickle.dumps(reservoir))
        reservoir.append(99)
        twin.append(99)
        assert list(twin) == list(reservoir)


class TestStats:
    def test_box_stats_of_known_sample(self):
        stats = box_stats(list(range(1, 101)))
        assert stats.median == pytest.approx(50.5)
        assert stats.p25 == pytest.approx(25.75)
        assert stats.p90 == pytest.approx(90.1)
        assert stats.count == 100

    def test_box_stats_empty_sample(self):
        stats = box_stats([])
        assert math.isnan(stats.median)
        assert stats.count == 0

    def test_percentile_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_cdf_points_monotone_and_bounded(self):
        points = cdf_points([5, 1, 3, 2, 4])
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == sorted(values)
        assert fractions[-1] == pytest.approx(1.0)
        assert all(0 < f <= 1 for f in fractions)

    def test_cdf_points_downsamples(self):
        points = cdf_points(list(range(1000)), max_points=50)
        assert len(points) == 50

    def test_summarize_keys(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summarize([]) == {"count": 0}

    def test_reduction_percent(self):
        assert reduction_percent(100.0, 2.0) == pytest.approx(98.0)
        assert reduction_percent(0.0, 1.0) == 0.0


class TestCollectors:
    def test_owd_collector_per_flow(self):
        collector = OwdCollector()
        collector.record(0, 0.01, 1.0)
        collector.record(0, 0.02, 2.0)
        collector.record(1, 0.05, 1.0)
        assert collector.flow_summary(0)["count"] == 2
        assert len(collector.all_samples()) == 3

    def test_throughput_collector_average_rate(self):
        collector = ThroughputCollector(window=0.1)
        for i in range(100):
            collector.record(0, 1000, i * 0.01)
        # 1000 bytes every 10 ms -> 100 kB/s
        assert collector.average_rate(0) == pytest.approx(100_000, rel=0.05)

    def test_throughput_collector_windowed_series(self):
        collector = ThroughputCollector(window=0.1)
        for i in range(100):
            collector.record(0, 1000, i * 0.01)
        series = collector.series[0]
        assert len(series) > 3
        assert series.mean() == pytest.approx(100_000, rel=0.2)

    def test_timeseries_points(self):
        series = TimeSeries()
        series.append(1.0, 2.0)
        series.append(2.0, 4.0)
        assert series.points() == [(1.0, 2.0), (2.0, 4.0)]
        assert series.mean() == 3.0
        assert math.isnan(TimeSeries().mean())


class TestBreakdown:
    def _stamped_packet(self, five_tuple):
        packet = make_data_packet(0, five_tuple, 0, 1400, ECN.ECT1, 0.0)
        packet.stamp("cu_ingress", 0.020)
        packet.stamp("rlc_enqueue", 0.021)
        packet.stamp("rlc_head", 0.030)
        packet.stamp_override("rlc_dequeue", 0.045)
        packet.stamp("ue_delivered", 0.050)
        return packet

    def test_components_sum_to_total_delay(self, five_tuple):
        packet = self._stamped_packet(five_tuple)
        breakdown = breakdown_from_packet(packet, 0.050)
        assert breakdown.propagation == pytest.approx(0.020)
        assert breakdown.queuing == pytest.approx(0.009)
        assert breakdown.scheduling == pytest.approx(0.015)
        assert breakdown.total == pytest.approx(0.050)

    def test_packet_without_ran_stamps_returns_none(self, five_tuple):
        packet = make_data_packet(0, five_tuple, 0, 1400, ECN.ECT1, 0.0)
        assert breakdown_from_packet(packet, 1.0) is None

    def test_accumulator_averages(self, five_tuple):
        accumulator = DelayBreakdownAccumulator()
        accumulator.record_packet(self._stamped_packet(five_tuple), 0.050)
        accumulator.record_packet(self._stamped_packet(five_tuple), 0.050)
        averages = accumulator.averages()
        assert averages["queuing"] == pytest.approx(0.009)
        assert accumulator.count == 2

    def test_accumulator_handles_no_packets(self):
        assert DelayBreakdownAccumulator().averages()["queuing"] == 0.0
