"""Tests for the packet model and ECN classification."""

from __future__ import annotations

from repro.net.addresses import FiveTuple, make_flow_tuple
from repro.net.ecn import ECN, FlowClass, classify_ecn, is_ecn_capable
from repro.net.packet import (AccEcnCounters, HEADER_BYTES, make_ack_packet,
                              make_data_packet)


class TestEcnClassification:
    def test_ect1_is_l4s(self):
        assert classify_ecn(ECN.ECT1) == FlowClass.L4S

    def test_ce_is_treated_as_l4s(self):
        assert classify_ecn(ECN.CE) == FlowClass.L4S

    def test_ect0_is_classic(self):
        assert classify_ecn(ECN.ECT0) == FlowClass.CLASSIC

    def test_not_ect_is_non_ecn(self):
        assert classify_ecn(ECN.NOT_ECT) == FlowClass.NON_ECN

    def test_only_not_ect_is_not_capable(self):
        assert not is_ecn_capable(ECN.NOT_ECT)
        assert all(is_ecn_capable(cp) for cp in (ECN.ECT0, ECN.ECT1, ECN.CE))


class TestFiveTuple:
    def test_reversed_swaps_endpoints(self):
        tuple_ = FiveTuple("a", 1, "b", 2, "tcp")
        rev = tuple_.reversed()
        assert rev == FiveTuple("b", 2, "a", 1, "tcp")
        assert rev.reversed() == tuple_

    def test_hashable_and_equal_by_value(self):
        a = FiveTuple("a", 1, "b", 2, "tcp")
        b = FiveTuple("a", 1, "b", 2, "tcp")
        assert a == b
        assert len({a, b}) == 1

    def test_make_flow_tuple_unique_per_flow(self):
        tuples = {make_flow_tuple(i) for i in range(50)}
        assert len(tuples) == 50


class TestPacket:
    def test_data_packet_sizes(self, five_tuple):
        packet = make_data_packet(0, five_tuple, 0, 1400, ECN.ECT1, 0.0)
        assert packet.size == 1400 + HEADER_BYTES
        assert packet.payload_bytes == 1400
        assert packet.end_seq == 1400

    def test_packet_ids_are_unique(self, five_tuple):
        a = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
        b = make_data_packet(0, five_tuple, 100, 100, ECN.ECT1, 0.0)
        assert a.packet_id != b.packet_id

    def test_mark_ce_on_capable_packet(self, five_tuple):
        packet = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
        assert packet.mark_ce(by="test")
        assert packet.ecn == ECN.CE
        assert packet.marked_by == "test"

    def test_mark_ce_on_not_ect_fails(self, five_tuple):
        packet = make_data_packet(0, five_tuple, 0, 100, ECN.NOT_ECT, 0.0)
        assert not packet.mark_ce(by="test")
        assert packet.ecn == ECN.NOT_ECT

    def test_stamp_keeps_first_value(self, five_tuple):
        packet = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
        packet.stamp("x", 1.0)
        packet.stamp("x", 2.0)
        assert packet.timestamps["x"] == 1.0
        packet.stamp_override("x", 3.0)
        assert packet.timestamps["x"] == 3.0

    def test_elapsed_between_stamps(self, five_tuple):
        packet = make_data_packet(0, five_tuple, 0, 100, ECN.ECT1, 0.0)
        packet.stamp("a", 1.0)
        packet.stamp("b", 1.5)
        assert packet.elapsed("a", "b") == 0.5
        assert packet.elapsed("a", "missing") is None

    def test_ack_packet_reverses_tuple_and_copies_counters(self, five_tuple):
        data = make_data_packet(3, five_tuple, 0, 1400, ECN.ECT1, 1.0)
        counters = AccEcnCounters(ce_packets=2, ce_bytes=2880)
        ack = make_ack_packet(data, ack_seq=1400, now=1.05, accecn=counters)
        assert ack.is_ack
        assert ack.five_tuple == five_tuple.reversed()
        assert ack.ack_seq == 1400
        assert ack.accecn.ce_bytes == 2880
        assert ack.accecn is not counters  # must be an independent copy
        assert ack.payload_info["data_sent_time"] == 1.0


class TestAccEcnCounters:
    def test_add_packet_splits_by_codepoint(self):
        counters = AccEcnCounters()
        counters.add_packet(100, ECN.CE)
        counters.add_packet(200, ECN.ECT1)
        counters.add_packet(300, ECN.ECT0)
        counters.add_packet(400, ECN.NOT_ECT)
        assert counters.ce_packets == 1
        assert counters.ce_bytes == 100
        assert counters.ect1_bytes == 200
        assert counters.ect0_bytes == 300

    def test_copy_is_independent(self):
        counters = AccEcnCounters(ce_packets=1)
        clone = counters.copy()
        clone.ce_packets = 5
        assert counters.ce_packets == 1
