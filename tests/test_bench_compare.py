"""Tests for the CI benchmark regression gate (scripts/bench_compare.py)."""

from __future__ import annotations

import importlib.util
import json
import pathlib

_SCRIPT = (pathlib.Path(__file__).parent.parent / "scripts"
           / "bench_compare.py")
_spec = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
bench_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_compare)


def _run_file(tmp_path, benchmarks) -> pathlib.Path:
    machine = tmp_path / "Linux-CPython-3.11-64bit"
    machine.mkdir(parents=True, exist_ok=True)
    run = machine / "0001_deadbeef_20260101_000000.json"
    run.write_text(json.dumps({"benchmarks": benchmarks}))
    return run


def _bench(name, extra_info=None, minimum=None):
    record = {"name": name, "fullname": f"benchmarks/x.py::{name}",
              "extra_info": extra_info or {}}
    if minimum is not None:
        record["stats"] = {"min": minimum}
    return record


class TestExtractMetrics:
    def test_rates_from_extra_info_and_rows(self, tmp_path):
        run = _run_file(tmp_path, [
            _bench("a", {"events_per_sec_best": 1000.0}),
            _bench("b", {"rows": [{"packets_per_sec_best": 50.0}]}),
            _bench("c", minimum=0.25),
        ])
        metrics = bench_compare.extract_metrics(run)
        assert metrics == {
            "benchmarks/x.py::a:events_per_sec_best": 1000.0,
            "benchmarks/x.py::b:packets_per_sec_best": 50.0,
            "benchmarks/x.py::c:ops_per_sec": 4.0,
        }


class TestGate:
    def _baseline(self, tmp_path, metrics, version=1) -> pathlib.Path:
        baseline = tmp_path / "baseline.json"
        document = {"schema_version": version, "metrics": metrics}
        if version is None:
            del document["schema_version"]
        baseline.write_text(json.dumps(document))
        return baseline

    def test_within_threshold_passes(self, tmp_path, capsys):
        run = _run_file(tmp_path, [_bench("a", {"events_per_sec_best": 900.0})])
        baseline = self._baseline(
            tmp_path, {"benchmarks/x.py::a:events_per_sec_best": 1000.0})
        code = bench_compare.main(["--run", str(run),
                                   "--baseline", str(baseline)])
        assert code == 0

    def test_regression_fails(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv(bench_compare.WARN_ONLY_ENV, raising=False)
        run = _run_file(tmp_path, [_bench("a", {"events_per_sec_best": 800.0})])
        baseline = self._baseline(
            tmp_path, {"benchmarks/x.py::a:events_per_sec_best": 1000.0})
        assert bench_compare.main(["--run", str(run),
                                   "--baseline", str(baseline)]) == 1
        # ... unless one of the warn-only escape hatches is engaged.
        assert bench_compare.main(["--run", str(run), "--warn-only",
                                   "--baseline", str(baseline)]) == 0

    def test_missing_tracked_metric_fails(self, tmp_path, capsys, monkeypatch):
        """A renamed/deleted benchmark must not silently shrink the gate."""
        monkeypatch.delenv(bench_compare.WARN_ONLY_ENV, raising=False)
        run = _run_file(tmp_path, [_bench("renamed",
                                          {"events_per_sec_best": 1e6})])
        baseline = self._baseline(
            tmp_path, {"benchmarks/x.py::a:events_per_sec_best": 1000.0})
        assert bench_compare.main(["--run", str(run),
                                   "--baseline", str(baseline)]) == 1

    def test_update_round_trips(self, tmp_path, capsys):
        run = _run_file(tmp_path, [_bench("a", {"events_per_sec_best": 1234.5})])
        baseline = tmp_path / "baseline.json"
        assert bench_compare.main(["--run", str(run), "--update",
                                   "--baseline", str(baseline)]) == 0
        assert bench_compare.main(["--run", str(run),
                                   "--baseline", str(baseline)]) == 0
        saved = json.loads(baseline.read_text())
        assert saved["schema_version"] == \
            bench_compare.BASELINE_SCHEMA_VERSION
        assert saved["metrics"] == {
            "benchmarks/x.py::a:events_per_sec_best": 1234.5}

    def test_baseline_without_metrics_mapping_fails_loudly(self, tmp_path,
                                                           capsys):
        """An old or hand-edited baseline schema must produce an actionable
        message, not a KeyError traceback."""
        run = _run_file(tmp_path, [_bench("a", {"events_per_sec_best": 1.0})])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"schema_version": 1,
                                        "thresholds": {}}))
        assert bench_compare.main(["--run", str(run),
                                   "--baseline", str(baseline)]) == 2
        assert "no 'metrics' mapping" in capsys.readouterr().err

    def test_corrupt_baseline_fails_loudly(self, tmp_path, capsys):
        run = _run_file(tmp_path, [_bench("a", {"events_per_sec_best": 1.0})])
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        assert bench_compare.main(["--run", str(run),
                                   "--baseline", str(baseline)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_non_numeric_baseline_metric_fails_loudly(self, tmp_path, capsys):
        run = _run_file(tmp_path, [_bench("a", {"events_per_sec_best": 1.0})])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"schema_version": 1,
             "metrics": {"benchmarks/x.py::a:events_per_sec_best":
                         "fast"}}))
        assert bench_compare.main(["--run", str(run),
                                   "--baseline", str(baseline)]) == 2
        assert "non-numeric" in capsys.readouterr().err


class TestBackendMetrics:
    def test_numpy_rate_is_tracked_and_speedup_is_informational(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv(bench_compare.WARN_ONLY_ENV, raising=False)
        extra = {"events_per_sec_best": 1000.0,
                 "events_per_sec_numpy": 1500.0,
                 "numpy_speedup": 1.5}
        run = _run_file(tmp_path, [_bench("a", extra)])
        baseline = tmp_path / "baseline.json"
        assert bench_compare.main(["--run", str(run), "--update",
                                   "--baseline", str(baseline)]) == 0
        saved = json.loads(baseline.read_text())["metrics"]
        assert saved["benchmarks/x.py::a:events_per_sec_numpy"] == 1500.0
        assert saved["benchmarks/x.py::a:numpy_speedup"] == 1.5

        # A numpy-rate regression gates like any other rate...
        slow = _run_file(tmp_path, [_bench("a", dict(
            extra, events_per_sec_numpy=1000.0))])
        assert bench_compare.main(["--run", str(slow),
                                   "--baseline", str(baseline)]) == 1

        # ...but a speedup-ratio swing alone never does (hard floors live
        # in the benchmarks themselves).
        ratio = _run_file(tmp_path, [_bench("a", dict(
            extra, numpy_speedup=1.0))])
        assert bench_compare.main(["--run", str(ratio),
                                   "--baseline", str(baseline)]) == 0
        assert "informational" in capsys.readouterr().out


class TestBaselineSchemaVersion:
    def test_unversioned_baseline_rejected_with_guidance(self, tmp_path,
                                                         capsys):
        run = _run_file(tmp_path, [_bench("a", {"events_per_sec_best": 1.0})])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"metrics": {"benchmarks/x.py::a:events_per_sec_best": 1.0}}))
        assert bench_compare.main(["--run", str(run),
                                   "--baseline", str(baseline)]) == 2
        err = capsys.readouterr().err
        assert "schema_version" in err
        assert "--update" in err

    def test_future_baseline_version_rejected_with_guidance(self, tmp_path,
                                                            capsys):
        run = _run_file(tmp_path, [_bench("a", {"events_per_sec_best": 1.0})])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"schema_version": 99,
             "metrics": {"benchmarks/x.py::a:events_per_sec_best": 1.0}}))
        assert bench_compare.main(["--run", str(run),
                                   "--baseline", str(baseline)]) == 2
        err = capsys.readouterr().err
        assert "schema_version 99" in err
        assert "only understands" in err

    def test_committed_baseline_is_versioned(self):
        committed = (pathlib.Path(__file__).parent.parent / "benchmarks"
                     / "baseline.json")
        document = json.loads(committed.read_text())
        assert document["schema_version"] in \
            bench_compare.SUPPORTED_BASELINE_VERSIONS
