"""Tests for the channel models, MCS tables and coherence analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.base import ChannelModel, ChannelSample
from repro.channel.coherence import fraction_longer_than, stable_periods
from repro.channel.fading import FadingChannel, coherence_time_for_speed, doppler_spread
from repro.channel.mcs import (cqi_from_snr, efficiency_from_cqi,
                               efficiency_from_snr, mcs_from_snr, snr_for_cqi)
from repro.channel.profiles import CHANNEL_PROFILES, make_channel
from repro.channel.static import StaticChannel
from repro.channel.trace import TraceChannel


class TestMcsTables:
    def test_cqi_monotone_in_snr(self):
        snrs = np.linspace(-10, 30, 100)
        cqis = [cqi_from_snr(s) for s in snrs]
        assert all(b >= a for a, b in zip(cqis, cqis[1:]))

    def test_efficiency_monotone_in_cqi(self):
        effs = [efficiency_from_cqi(c) for c in range(16)]
        assert all(b >= a for a, b in zip(effs, effs[1:]))

    def test_extreme_snrs_clamp(self):
        assert cqi_from_snr(-50) == 0
        assert cqi_from_snr(60) == 15
        assert efficiency_from_snr(60) == efficiency_from_cqi(15)

    def test_snr_for_cqi_is_inverse(self):
        for cqi in range(1, 16):
            assert cqi_from_snr(snr_for_cqi(cqi) + 0.01) == cqi

    def test_mcs_range(self):
        assert 0 <= mcs_from_snr(-20) <= 27
        assert 0 <= mcs_from_snr(40) <= 27

    def test_array_mappers_match_scalar_at_boundaries(self):
        # The numpy engine backend's bit-identity on static channels rests
        # on the vectorized table lookups rounding exactly like the scalar
        # bisect at every CQI threshold: pin each threshold itself (a
        # right-closed boundary) plus one ulp-ish step either side.
        from repro.channel.mcs import (_CQI_SNR_THRESHOLDS_DB,
                                       cqi_from_snr_array,
                                       efficiency_from_snr_array,
                                       mcs_from_snr_array)
        probes = []
        for threshold in _CQI_SNR_THRESHOLDS_DB:
            probes.extend([np.nextafter(threshold, -np.inf), threshold,
                           np.nextafter(threshold, np.inf)])
        probes.extend([-1e9, 1e9])
        snr = np.asarray(probes)
        assert cqi_from_snr_array(snr).tolist() == [
            cqi_from_snr(s) for s in probes]
        assert efficiency_from_snr_array(snr).tolist() == [
            efficiency_from_snr(s) for s in probes]
        assert mcs_from_snr_array(snr).tolist() == [
            mcs_from_snr(s) for s in probes]


class TestCoherenceTime:
    def test_doppler_increases_with_speed(self):
        assert doppler_spread(70, 3.5) > doppler_spread(3, 3.5)

    def test_vehicular_coherence_is_milliseconds(self):
        # The Clarke-model rule gives a few milliseconds at 3.5 GHz / 70 km/h;
        # the paper adopts the larger measured value (24.9 ms) as its pre-set.
        tc = coherence_time_for_speed(70, 3.5)
        assert 0.0005 < tc < 0.01
        assert tc < coherence_time_for_speed(3, 3.5)

    def test_zero_speed_is_infinite(self):
        assert coherence_time_for_speed(0, 3.5) == float("inf")


class TestChannels:
    def test_static_channel_is_constant_without_noise(self):
        channel = StaticChannel(snr_db=20, noise_std_db=0.0)
        samples = [channel.sample(t).snr_db for t in np.linspace(0, 10, 20)]
        assert all(s == 20 for s in samples)

    def test_sample_carries_consistent_cqi(self):
        sample = ChannelSample.from_snr(0.0, 22.0)
        assert sample.cqi == cqi_from_snr(22.0)
        assert sample.efficiency == efficiency_from_cqi(sample.cqi)

    def test_fading_channel_reverts_to_mean(self):
        channel = FadingChannel(mean_snr_db=20, std_snr_db=4, speed_kmh=70,
                                rng=np.random.default_rng(1))
        samples = [channel.sample(t * 0.001).snr_db for t in range(20_000)]
        assert abs(np.mean(samples) - 20) < 1.5

    def test_fading_channel_varies(self):
        channel = FadingChannel(mean_snr_db=20, std_snr_db=4, speed_kmh=70,
                                rng=np.random.default_rng(1))
        samples = [channel.sample(t * 0.001).snr_db for t in range(5_000)]
        assert np.std(samples) > 1.0

    def test_vehicular_varies_faster_than_pedestrian(self):
        fast = FadingChannel(mean_snr_db=20, std_snr_db=4, speed_kmh=70,
                             rng=np.random.default_rng(1))
        slow = FadingChannel(mean_snr_db=20, std_snr_db=4, speed_kmh=3,
                             rng=np.random.default_rng(1))
        def lag1_diff(channel):
            samples = [channel.sample(t * 0.001).snr_db for t in range(3000)]
            return np.mean(np.abs(np.diff(samples)))
        assert lag1_diff(fast) > lag1_diff(slow)

    def test_vectorized_mcs_trace_matches_sample_loop(self):
        """FadingChannel.mcs_trace (vectorized table gather) must be
        bit-identical to the generic sample()-per-point implementation."""
        def make():
            return FadingChannel(mean_snr_db=18, std_snr_db=5, speed_kmh=30,
                                 rng=np.random.default_rng(9),
                                 deep_fade_rate=0.5, deep_fade_depth_db=12,
                                 deep_fade_duration=0.2)
        fast = make().mcs_trace(2.0, 0.005)
        generic = ChannelModel.mcs_trace(make(), 2.0, 0.005)
        assert fast == generic

    def test_deep_fade_reduces_snr(self):
        channel = FadingChannel(mean_snr_db=20, std_snr_db=0.1, speed_kmh=3,
                                rng=np.random.default_rng(1),
                                deep_fade_rate=50.0, deep_fade_depth_db=15,
                                deep_fade_duration=1.0)
        samples = [channel.sample(t * 0.01).snr_db for t in range(500)]
        assert min(samples) < 10

    def test_trace_channel_piecewise_constant(self):
        channel = TraceChannel([(0.0, 10.0), (1.0, 20.0)])
        assert channel.sample(0.5).snr_db == 10.0
        assert channel.sample(1.5).snr_db == 20.0

    def test_trace_channel_looping(self):
        channel = TraceChannel([(0.0, 10.0), (1.0, 20.0)], loop_period=2.0)
        assert channel.sample(2.5).snr_db == 10.0

    def test_trace_channel_requires_breakpoints(self):
        with pytest.raises(ValueError):
            TraceChannel([])

    def test_profiles_factory(self):
        rng = np.random.default_rng(0)
        for profile in CHANNEL_PROFILES:
            channel = make_channel(profile, rng, ue_index=1)
            assert channel.sample(0.0).efficiency >= 0

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            make_channel("underwater", np.random.default_rng(0))


class TestStablePeriods:
    def test_constant_trace_truncated_at_max_period(self):
        trace = [(i * 0.01, 10) for i in range(500)]  # 5 s of identical MCS
        periods = stable_periods(trace, max_period=1.0)
        assert all(p <= 1.0 for p in periods)
        assert sum(periods) > 4.0

    def test_alternating_extremes_give_short_periods(self):
        trace = [(i * 0.01, 0 if i % 2 else 27) for i in range(200)]
        periods = stable_periods(trace, max_deviation=5)
        assert max(periods) <= 0.02

    def test_deviation_threshold_respected(self):
        trace = [(i * 0.01, 10 + (i % 4)) for i in range(100)]  # deviation 3
        periods = stable_periods(trace, max_deviation=5, max_period=10.0)
        assert len(periods) == 1

    def test_unsorted_trace_rejected(self):
        with pytest.raises(ValueError):
            stable_periods([(1.0, 5), (0.5, 5)])

    def test_fraction_longer_than(self):
        assert fraction_longer_than([0.1, 0.2, 0.3], 0.15) == pytest.approx(2 / 3)
        assert fraction_longer_than([], 0.1) == 0.0
