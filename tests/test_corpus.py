"""Replay the committed fuzz corpus through every invariant suite.

Each ``tests/corpus/*.json`` entry is a previously interesting spec —
a retired sharding blocker, a minimized campaign failure, a
determinism-tier representative — pinned so regressions on any runtime
axis fail tier-1 loudly.  The corpus format is the contract
``scripts/fuzz_specs.py --minimize`` appends to.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.fuzz import check_spec
from repro.experiments.spec import ScenarioSpec

CORPUS_DIR = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    """An empty corpus means replay silently checks nothing."""
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_replays_clean(path):
    entry = json.loads(path.read_text())
    assert entry["schema"] == 1, f"{path.name}: unknown corpus schema"
    assert entry["name"], f"{path.name}: entry must carry a name"
    spec = ScenarioSpec.from_dict(entry["spec"])
    violations = check_spec(spec,
                            shard_counts=entry.get("shard_counts", [2]))
    assert violations == [], f"{path.name} ({entry['name']}): {violations}"
