"""Integration tests: full scenarios through the scenario builder.

These are the end-to-end checks that the reproduction preserves the paper's
qualitative results: L4Span slashes queueing delay while keeping throughput,
for both L4S and classic senders, and the feedback short-circuiting and
baseline markers behave sensibly.  Durations are kept short so the whole
suite stays fast; the benchmarks run longer versions.
"""

from __future__ import annotations

import pytest

from repro.core.config import L4SpanConfig
from repro.experiments.scenario import run_scenario
from repro.experiments.spec import ScenarioSpec
from repro.experiments.wired import WiredScenarioConfig, run_wired_scenario
from repro.units import ms
from repro.workloads.flows import FlowSpec
from repro.workloads.short_flows import short_long_mix


def _run(marker, cc_name="prague", duration=4.0, num_ues=1, **kwargs):
    return run_scenario(ScenarioSpec(num_ues=num_ues, duration_s=duration,
                                       cc_name=cc_name, marker=marker,
                                       seed=3, **kwargs))


class TestHeadlineResult:
    """The paper's top-line claim: far lower delay at similar throughput."""

    @pytest.fixture(scope="class")
    def prague_pair(self):
        baseline = _run("none", "prague", duration=5.0)
        l4span = _run("l4span", "prague", duration=5.0)
        return baseline, l4span

    def test_l4span_cuts_prague_owd_by_an_order_of_magnitude(self, prague_pair):
        baseline, l4span = prague_pair
        assert l4span.median_owd_ms() < 0.1 * baseline.median_owd_ms()

    def test_l4span_keeps_most_of_the_throughput(self, prague_pair):
        baseline, l4span = prague_pair
        assert l4span.total_goodput_mbps() > 0.5 * baseline.total_goodput_mbps()

    def test_l4span_keeps_rlc_queue_shallow(self, prague_pair):
        baseline, l4span = prague_pair
        mean_queue_l4span = (sum(l4span.queue_length_samples)
                             / max(1, len(l4span.queue_length_samples)))
        mean_queue_baseline = (sum(baseline.queue_length_samples)
                               / max(1, len(baseline.queue_length_samples)))
        assert mean_queue_l4span < 0.05 * mean_queue_baseline

    def test_marks_are_actually_generated(self, prague_pair):
        _, l4span = prague_pair
        assert l4span.marker_summary["marked_packets"] > 0
        assert l4span.marker_summary["shortcircuited_acks"] > 0


class TestMultiUe:
    def test_congested_cell_baseline_bloats_and_l4span_does_not(self):
        baseline = _run("none", "prague", duration=4.0, num_ues=4)
        l4span = _run("l4span", "prague", duration=4.0, num_ues=4)
        assert baseline.median_owd_ms() > 200
        assert l4span.median_owd_ms() < 100
        # Every UE keeps receiving data under L4Span.
        assert all(rate > 0 for rate in l4span.per_ue_throughput.values())

    def test_classic_flows_also_benefit_in_a_busy_cell(self):
        baseline = _run("none", "cubic", duration=4.0, num_ues=4)
        l4span = _run("l4span", "cubic", duration=4.0, num_ues=4)
        assert l4span.median_owd_ms() < baseline.median_owd_ms()


class TestSchedulersAndModes:
    def test_proportional_fair_scheduler_runs(self):
        result = _run("l4span", "prague", duration=2.5, num_ues=2,
                      scheduler="pf")
        assert result.total_goodput_mbps() > 1.0

    def test_rlc_um_mode_works_end_to_end(self):
        result = _run("l4span", "prague", duration=2.5, rlc_mode="um")
        assert result.total_goodput_mbps() > 1.0
        assert result.median_owd_ms() < 200

    def test_short_rlc_queue_limits_delay_even_without_l4span(self):
        deep = _run("none", "cubic", duration=3.0, num_ues=2)
        shallow = _run("none", "cubic", duration=3.0, num_ues=2,
                       rlc_queue_sdus=256)
        assert shallow.median_owd_ms() < deep.median_owd_ms()

    def test_mobile_channel_profile_runs(self):
        result = _run("l4span", "prague", duration=2.5, num_ues=2,
                      channel_profile="mobile")
        assert result.total_goodput_mbps() > 0.5


class TestShortFlows:
    def test_short_flow_completes_and_l4span_speeds_it_up(self):
        flows = short_long_mix("prague", slf_start=2.0)
        baseline = run_scenario(ScenarioSpec(
            num_ues=1, duration_s=5.0, marker="none", flows=flows, seed=3))
        l4span = run_scenario(ScenarioSpec(
            num_ues=1, duration_s=5.0, marker="l4span", flows=flows, seed=3))
        slf_base = baseline.flows_by_label("slf")[0]
        slf_l4s = l4span.flows_by_label("slf")[0]
        assert slf_l4s.completion_time is not None
        if slf_base.completion_time is not None:
            assert slf_l4s.completion_time <= slf_base.completion_time * 1.05


class TestShortCircuit:
    def test_shortcircuit_reduces_feedback_delay(self):
        common = dict(num_ues=1, duration_s=4.0, cc_name="prague",
                      marker="l4span", wan_rtt=ms(10), seed=3)
        with_sc = run_scenario(ScenarioSpec(
            l4span_config=L4SpanConfig(enable_shortcircuit=True), **common))
        without_sc = run_scenario(ScenarioSpec(
            l4span_config=L4SpanConfig(enable_shortcircuit=False), **common))
        assert with_sc.marker_summary["shortcircuited_acks"] > 0
        assert without_sc.marker_summary["shortcircuited_acks"] == 0
        # Both configurations keep the queue controlled.
        assert with_sc.median_owd_ms() < 100
        assert without_sc.median_owd_ms() < 150


class TestInteractiveVideo:
    def test_scream_over_udp_is_marked_on_the_downlink(self):
        flows = [FlowSpec(flow_id=0, ue_id=0, cc_name="scream", label="video")]
        result = run_scenario(ScenarioSpec(
            num_ues=1, duration_s=4.0, marker="l4span", flows=flows,
            wan_rtt=ms(20), seed=3))
        video = result.flows[0]
        assert video.goodput_mbps > 0.2
        assert result.marker_summary["shortcircuited_acks"] == 0


class TestWiredReference:
    def test_wired_dualpi2_gives_low_rtt_and_high_throughput(self):
        result = run_wired_scenario(WiredScenarioConfig(
            cc_names=["prague", "cubic"], bottleneck_mbps=40, rtt=ms(20),
            duration_s=4.0))
        prague = result.flow("prague")
        assert prague.goodput_mbps > 10
        median_rtt = sorted(prague.rtt_samples)[len(prague.rtt_samples) // 2]
        assert median_rtt < 0.06


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = _run("l4span", "prague", duration=2.0)
        b = _run("l4span", "prague", duration=2.0)
        assert a.median_owd_ms() == b.median_owd_ms()
        assert a.total_goodput_mbps() == b.total_goodput_mbps()

    def test_different_seeds_differ(self):
        a = run_scenario(ScenarioSpec(num_ues=1, duration_s=2.0,
                                        cc_name="prague", marker="l4span",
                                        channel_profile="mobile", seed=1))
        b = run_scenario(ScenarioSpec(num_ues=1, duration_s=2.0,
                                        cc_name="prague", marker="l4span",
                                        channel_profile="mobile", seed=2))
        assert a.median_owd_ms() != b.median_owd_ms()
