"""Tests for workload builders and the text report renderer."""

from __future__ import annotations

import pytest

from repro.experiments.report import format_sections, format_table
from repro.workloads.flows import bulk_download_flows, mixed_share_flows
from repro.workloads.short_flows import DEFAULT_SLF_BYTES, short_flow, short_long_mix
from repro.workloads.video import interactive_video_flows


class TestWorkloads:
    def test_bulk_downloads_one_flow_per_ue(self):
        flows = bulk_download_flows(8, "prague")
        assert len(flows) == 8
        assert {f.ue_id for f in flows} == set(range(8))
        assert all(f.flow_bytes is None for f in flows)

    def test_mixed_share_staggering(self):
        flows = mixed_share_flows(["prague", "cubic", "bbr2"],
                                  staggered_start=10.0, stop_after=60.0)
        assert [f.start_time for f in flows] == [0.0, 10.0, 20.0]
        assert [f.stop_time for f in flows] == [60.0, 50.0, 40.0]
        assert [f.ue_id for f in flows] == [0, 1, 2]

    def test_mixed_share_single_ue(self):
        flows = mixed_share_flows(["prague", "cubic"], one_ue=True)
        assert {f.ue_id for f in flows} == {0}

    def test_short_flow_defaults_to_14kb(self):
        flow = short_flow(1, 0, "prague", start_time=2.0)
        assert flow.flow_bytes == DEFAULT_SLF_BYTES == 14_000
        assert flow.label == "slf"

    def test_short_long_mix_structure(self):
        flows = short_long_mix("cubic", slf_start=3.0, repeat=2)
        labels = [f.label for f in flows]
        assert labels == ["llf", "slf", "slf"]
        assert flows[1].start_time == 3.0
        assert flows[2].start_time == 5.0

    def test_video_flows_require_udp_algorithms(self):
        flows = interactive_video_flows(4, "scream")
        assert len(flows) == 4
        with pytest.raises(ValueError):
            interactive_video_flows(4, "cubic")


class TestReport:
    def test_format_table_alignment_and_values(self):
        rows = [{"name": "a", "value": 1.234, "flag": True},
                {"name": "bb", "value": 5.0, "flag": False}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.23" in text and "yes" in text and "no" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_missing_keys_render_as_dash(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "-" in text

    def test_format_sections(self):
        text = format_sections([("first", [{"x": 1}]), ("second", [])])
        assert "== first ==" in text and "== second ==" in text
