"""Tests for the RLC entity: queueing, grants, feedback and in-order delivery."""

from __future__ import annotations

import pytest

from repro.net.ecn import ECN
from repro.net.packet import make_data_packet
from repro.ran.identifiers import DrbConfig, RlcMode
from repro.ran.phy import AirInterface, AirInterfaceConfig
from repro.ran.rlc import RlcEntity
from repro.units import ms


class RlcHarness:
    """An RLC entity with captured delivery and status callbacks."""

    def __init__(self, sim, mode=RlcMode.AM, max_sdus=100, bler=0.0):
        self.delivered = []
        self.status_reports = []
        air = AirInterface(sim, AirInterfaceConfig(target_bler=bler,
                                                   delivery_jitter=0.0))
        self.entity = RlcEntity(
            sim, ue_id=0,
            config=DrbConfig(drb_id=1, rlc_mode=mode, max_queue_sdus=max_sdus),
            air=air,
            deliver=lambda packet, t: self.delivered.append(packet),
            send_status=lambda tx, dl, t: self.status_reports.append((tx, dl, t)))

    def enqueue_packets(self, five_tuple, count, payload=1400, start_sn=0):
        for i in range(count):
            packet = make_data_packet(0, five_tuple, i * payload, payload,
                                      ECN.ECT1, 0.0)
            self.entity.enqueue(start_sn + i, packet)


class TestRlcQueueing:
    def test_enqueue_tracks_backlog(self, sim, five_tuple):
        harness = RlcHarness(sim)
        harness.enqueue_packets(five_tuple, 3)
        assert harness.entity.queue_length_sdus == 3
        assert harness.entity.backlog_bytes == 3 * 1440

    def test_queue_limit_drops(self, sim, five_tuple):
        harness = RlcHarness(sim, max_sdus=2)
        harness.enqueue_packets(five_tuple, 5)
        assert harness.entity.queue_length_sdus == 2
        assert harness.entity.dropped_sdus == 3

    def test_pull_consumes_whole_sdus_and_reports_status(self, sim, five_tuple):
        harness = RlcHarness(sim)
        harness.enqueue_packets(five_tuple, 3)
        used = harness.entity.pull(2 * 1440)
        assert used == 2 * 1440
        assert harness.entity.queue_length_sdus == 1
        assert harness.status_reports  # one batched report per grant
        assert harness.status_reports[-1][0] == 1  # highest txed SN

    def test_partial_grant_segments_sdu(self, sim, five_tuple):
        harness = RlcHarness(sim)
        harness.enqueue_packets(five_tuple, 1)
        used = harness.entity.pull(700)
        assert used == 700
        # Not yet transmitted: the SDU still occupies the queue.
        assert harness.entity.queue_length_sdus == 1
        assert harness.entity.highest_txed_sn is None
        used = harness.entity.pull(800)
        assert used == 1440 - 700
        assert harness.entity.highest_txed_sn == 0

    def test_pull_on_empty_queue_returns_zero(self, sim, five_tuple):
        harness = RlcHarness(sim)
        assert harness.entity.pull(5000) == 0

    def test_delivery_reaches_ue(self, sim, five_tuple):
        harness = RlcHarness(sim)
        harness.enqueue_packets(five_tuple, 2)
        harness.entity.pull(2 * 1440)
        sim.run(until=0.1)
        assert len(harness.delivered) == 2

    def test_in_order_delivery_despite_harq_jitter(self, sim, five_tuple):
        harness = RlcHarness(sim, bler=0.3)
        harness.enqueue_packets(five_tuple, 20)
        harness.entity.pull(20 * 1440)
        sim.run(until=1.0)
        assert len(harness.delivered) == 20
        seqs = [p.seq for p in harness.delivered]
        assert seqs == sorted(seqs)

    def test_delivered_sn_reported_in_am(self, sim, five_tuple):
        harness = RlcHarness(sim, mode=RlcMode.AM)
        harness.enqueue_packets(five_tuple, 2)
        harness.entity.pull(2 * 1440)
        sim.run(until=0.5)
        assert harness.entity.highest_delivered_sn == 1
        assert any(report[1] == 1 for report in harness.status_reports)

    def test_um_mode_never_reports_delivery(self, sim, five_tuple):
        harness = RlcHarness(sim, mode=RlcMode.UM)
        harness.enqueue_packets(five_tuple, 2)
        harness.entity.pull(2 * 1440)
        sim.run(until=0.5)
        assert all(report[1] is None for report in harness.status_reports)

    def test_timestamps_stamped_for_breakdown(self, sim, five_tuple):
        harness = RlcHarness(sim)
        harness.enqueue_packets(five_tuple, 1)
        harness.entity.pull(1440)
        sim.run(until=0.1)
        packet = harness.delivered[0]
        assert "rlc_enqueue" in packet.timestamps
        assert "rlc_dequeue" in packet.timestamps
        assert "ue_delivered" in packet.timestamps
        assert (packet.timestamps["ue_delivered"]
                >= packet.timestamps["rlc_dequeue"]
                >= packet.timestamps["rlc_enqueue"])

    def test_head_of_line_wait_grows_with_time(self, sim, five_tuple):
        harness = RlcHarness(sim)
        harness.enqueue_packets(five_tuple, 1)
        sim.schedule(0.2, lambda: None)
        sim.run()
        assert harness.entity.head_of_line_wait() == pytest.approx(0.2)


class TestRlcRetransmissionAccounting:
    """AM retransmission bookkeeping: bytes, loss and head-of-line stamps."""

    def test_am_retx_byte_accounting_invariant(self, sim, five_tuple):
        # target_bler=1.0 makes every HARQ attempt (and the final decode)
        # fail, so each transmission is re-queued until the 8-retx cap.
        harness = RlcHarness(sim, bler=1.0)
        entity = harness.entity
        harness.enqueue_packets(five_tuple, 1)
        for _attempt in range(9):  # initial transmission + 8 retransmissions
            assert entity.backlog_bytes == sum(entity.queued_sdu_sizes())
            assert entity.queue_length_sdus == 1
            used = entity.pull(1440)
            assert used == 1440
            assert entity.backlog_bytes == 0
            sim.run(until=sim.now + 1.0)  # air failure -> re-queue (or loss)
        assert entity.lost_sdus == 1
        assert entity.queue_length_sdus == 0
        assert entity.backlog_bytes == 0
        assert harness.delivered == []

    def test_requeued_sdu_gets_fresh_head_stamp(self, sim, five_tuple):
        """After a HARQ failure the re-queued SDU must not report a
        head-of-line wait inflated by its first pass through the queue."""
        harness = RlcHarness(sim, bler=1.0)
        entity = harness.entity
        harness.enqueue_packets(five_tuple, 1)
        entity.pull(1440)
        # Failure (and re-queue) happens at base_delay + 3 * harq_rtt = 26 ms.
        requeue_time = 0.002 + 3 * 0.008
        sim.schedule(0.05, lambda: None)
        sim.run()
        assert entity.queue_length_sdus == 1
        assert entity.head_of_line_wait() == pytest.approx(
            sim.now - requeue_time)


class TestRlcInOrderDelivery:
    """In-order delivery across skipped SNs and late UM deliveries."""

    def _detach_queued_sdus(self, entity, count):
        """Take the queued SDUs out of the entity so delivery outcomes can be
        injected in a controlled order (as if their air transfers raced)."""
        sdus = list(entity._tx_queue)[:count]
        for _ in range(count):
            entity._tx_queue.popleft()
        entity.backlog_bytes -= sum(s.size for s in sdus)
        return sdus

    def test_um_late_delivery_after_expiry_is_not_leaked(self, sim, five_tuple):
        harness = RlcHarness(sim, mode=RlcMode.UM)
        entity = harness.entity
        harness.enqueue_packets(five_tuple, 3)
        sdus = self._detach_queued_sdus(entity, 3)
        # SNs 1 and 2 complete their air transfer while SN 0 is still in
        # flight: the gap holds delivery back.
        entity._on_sdu_delivered(sdus[1], sim.now)
        entity._on_sdu_delivered(sdus[2], sim.now)
        assert harness.delivered == []
        # The UM reassembly timer gives up on the gap...
        sim.run(until=0.1)
        assert [p.seq for p in harness.delivered] == [1400, 2800]
        # ...and a late-but-successful SN 0 must still reach the UE
        # immediately instead of parking in the pending map forever.
        entity._on_sdu_delivered(sdus[0], sim.now)
        assert [p.seq for p in harness.delivered] == [1400, 2800, 0]
        assert entity._pending_delivery == {}
        assert entity._skipped_sns == set()

    def test_flush_across_skipped_sns(self, sim, five_tuple):
        harness = RlcHarness(sim, mode=RlcMode.UM)
        entity = harness.entity
        harness.enqueue_packets(five_tuple, 4)
        sdus = self._detach_queued_sdus(entity, 4)
        # SNs 0 and 1 are permanently lost (UM never retransmits), SN 2 lands.
        entity._on_sdu_failed(sdus[0], sim.now)
        entity._on_sdu_failed(sdus[1], sim.now)
        assert entity.lost_sdus == 2
        entity._on_sdu_delivered(sdus[2], sim.now)
        assert [p.seq for p in harness.delivered] == [2800]
        # Delivery resumed past the skipped gap: SN 3 flows straight through.
        entity._on_sdu_delivered(sdus[3], sim.now)
        assert [p.seq for p in harness.delivered] == [2800, 4200]

    def test_am_delivery_resumes_after_exhausted_retx(self, sim, five_tuple):
        """A lost AM SDU (retx cap hit) must not block later SNs."""
        harness = RlcHarness(sim, bler=1.0)
        entity = harness.entity
        harness.enqueue_packets(five_tuple, 2)
        sdus = self._detach_queued_sdus(entity, 2)
        sdus[0].retransmissions = 8  # cap reached: the next failure is final
        entity._on_sdu_failed(sdus[0], sim.now)
        assert entity.lost_sdus == 1
        entity._on_sdu_delivered(sdus[1], sim.now)
        assert [p.seq for p in harness.delivered] == [1400]
