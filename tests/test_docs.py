"""Consistency checks between the docs tree and the code.

``docs/scenarios.md`` documents the full spec schema, every registered
component name and every preset; these tests fail when a registration or a
spec field is added (or renamed) without updating the doc — the doc cannot
silently rot.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path

import pytest

import repro.experiments.presets  # noqa: F401  (preset registration)
import repro.experiments.spec as spec_module
from repro.registry import (CC_SENDERS, CHANNEL_PROFILES, MARKERS,
                            SCENARIO_PRESETS, SCHEDULERS, WORKLOADS)
from repro.sim.backends import ENGINE_BACKENDS

DOCS = Path(__file__).resolve().parent.parent / "docs"


@pytest.fixture(scope="module")
def scenarios_md() -> str:
    return (DOCS / "scenarios.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def scenarios_tokens(scenarios_md) -> set[str]:
    """Every backtick-quoted token in the doc.

    Newlines are excluded from tokens so the ``` fences of code blocks
    cannot desynchronise the backtick pairing.
    """
    return set(re.findall(r"`([^`\n]+)`", scenarios_md))


def test_docs_tree_exists():
    assert (DOCS / "architecture.md").is_file()
    assert (DOCS / "scenarios.md").is_file()


@pytest.mark.parametrize("registry", [
    CC_SENDERS, MARKERS, CHANNEL_PROFILES, SCHEDULERS, WORKLOADS,
    SCENARIO_PRESETS, ENGINE_BACKENDS,
], ids=lambda r: r.kind)
def test_every_registered_name_documented(registry, scenarios_tokens):
    for name in registry.names(include_aliases=True):
        assert name in scenarios_tokens, (
            f"{registry.kind} {name!r} is registered but missing from "
            f"docs/scenarios.md")


@pytest.mark.parametrize("cls", [
    spec_module.ScenarioSpec, spec_module.CellSpec, spec_module.UeSpec,
    spec_module.ShardingSpec, spec_module.MobilitySpec,
    spec_module.HandoverSpec, spec_module.PopulationSpec,
    spec_module.EngineSpec,
], ids=lambda c: c.__name__)
def test_every_spec_field_documented(cls, scenarios_tokens):
    for field in dataclasses.fields(cls):
        assert field.name in scenarios_tokens, (
            f"{cls.__name__}.{field.name} exists but is missing from "
            f"docs/scenarios.md")


def test_flow_spec_fields_documented(scenarios_tokens):
    from repro.workloads.flows import FlowSpec
    for field in dataclasses.fields(FlowSpec):
        assert field.name in scenarios_tokens


def test_documented_presets_actually_exist(scenarios_md):
    """Reverse direction: the preset table only names real presets."""
    table = scenarios_md.split("**`SCENARIO_PRESETS`**", 1)[1]
    rows = re.findall(r"^\| `([^`]+)`", table, flags=re.MULTILINE)
    assert rows, "preset table not found in docs/scenarios.md"
    for name in rows:
        assert name in SCENARIO_PRESETS, (
            f"docs/scenarios.md documents unknown preset {name!r}")
    # ... and misses none.
    documented = set(rows)
    for name in SCENARIO_PRESETS.names():
        assert name in documented


def test_documented_defaults_match_spec(scenarios_md):
    """Spot-check load-bearing defaults the doc states as values."""
    spec = spec_module.ScenarioSpec()
    assert f"`{spec.mobility.interruption_s:.3f}`" == "`0.020`"
    assert "`0.020`" in scenarios_md
    assert spec.mobility.ho_mode == "forward"
    assert spec.sharding.adaptive_windows is True
