"""Consistency checks between the docs tree and the code.

``docs/scenarios.md`` documents the full spec schema, every registered
component name and every preset; these tests fail when a registration or a
spec field is added (or renamed) without updating the doc — the doc cannot
silently rot.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path

import pytest

import repro.experiments.presets  # noqa: F401  (preset registration)
import repro.experiments.spec as spec_module
from repro.registry import (CC_SENDERS, CHANNEL_PROFILES, MARKERS,
                            SCENARIO_PRESETS, SCHEDULERS, WORKLOADS)
from repro.sim.backends import ENGINE_BACKENDS

DOCS = Path(__file__).resolve().parent.parent / "docs"


@pytest.fixture(scope="module")
def scenarios_md() -> str:
    return (DOCS / "scenarios.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def scenarios_tokens(scenarios_md) -> set[str]:
    """Every backtick-quoted token in the doc.

    Newlines are excluded from tokens so the ``` fences of code blocks
    cannot desynchronise the backtick pairing.
    """
    return set(re.findall(r"`([^`\n]+)`", scenarios_md))


def test_docs_tree_exists():
    assert (DOCS / "architecture.md").is_file()
    assert (DOCS / "scenarios.md").is_file()
    assert (DOCS / "service.md").is_file()


@pytest.mark.parametrize("registry", [
    CC_SENDERS, MARKERS, CHANNEL_PROFILES, SCHEDULERS, WORKLOADS,
    SCENARIO_PRESETS, ENGINE_BACKENDS,
], ids=lambda r: r.kind)
def test_every_registered_name_documented(registry, scenarios_tokens):
    for name in registry.names(include_aliases=True):
        assert name in scenarios_tokens, (
            f"{registry.kind} {name!r} is registered but missing from "
            f"docs/scenarios.md")


@pytest.mark.parametrize("cls", [
    spec_module.ScenarioSpec, spec_module.CellSpec, spec_module.UeSpec,
    spec_module.ShardingSpec, spec_module.MobilitySpec,
    spec_module.HandoverSpec, spec_module.PopulationSpec,
    spec_module.EngineSpec,
], ids=lambda c: c.__name__)
def test_every_spec_field_documented(cls, scenarios_tokens):
    for field in dataclasses.fields(cls):
        assert field.name in scenarios_tokens, (
            f"{cls.__name__}.{field.name} exists but is missing from "
            f"docs/scenarios.md")


def test_flow_spec_fields_documented(scenarios_tokens):
    from repro.workloads.flows import FlowSpec
    for field in dataclasses.fields(FlowSpec):
        assert field.name in scenarios_tokens


def test_documented_presets_actually_exist(scenarios_md):
    """Reverse direction: the preset table only names real presets."""
    table = scenarios_md.split("**`SCENARIO_PRESETS`**", 1)[1]
    rows = re.findall(r"^\| `([^`]+)`", table, flags=re.MULTILINE)
    assert rows, "preset table not found in docs/scenarios.md"
    for name in rows:
        assert name in SCENARIO_PRESETS, (
            f"docs/scenarios.md documents unknown preset {name!r}")
    # ... and misses none.
    documented = set(rows)
    for name in SCENARIO_PRESETS.names():
        assert name in documented


@pytest.fixture(scope="module")
def service_md() -> str:
    return (DOCS / "service.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def service_tokens(service_md) -> set[str]:
    return set(re.findall(r"`([^`\n]+)`", service_md))


def test_service_doc_covers_every_route(service_md):
    """Every route the handler dispatches appears in docs/service.md."""
    for route in ("GET /health", "GET /schema", "POST /runs", "GET /runs",
                  "GET /runs/{id}", "GET /runs/{id}/document",
                  "GET /runs/{id}/events"):
        # The doc renders them inside table cells as `GET /health` etc.
        method, path = route.split(" ", 1)
        assert re.search(rf"`{method}\s+{re.escape(path)}`", service_md), (
            f"route {route!r} is served but missing from docs/service.md")


def test_service_doc_covers_request_and_override_keys(service_tokens):
    from repro.experiments.options import RuntimeOptions
    from repro.service.jobs import REQUEST_KEYS, RUN_STATUSES

    for key in REQUEST_KEYS:
        assert key in service_tokens, (
            f"POST /runs key {key!r} missing from docs/service.md")
    for field in dataclasses.fields(RuntimeOptions):
        assert field.name in service_tokens, (
            f"override {field.name!r} missing from docs/service.md")
    for status in RUN_STATUSES:
        assert status in service_tokens, (
            f"run status {status!r} missing from docs/service.md")


def test_service_doc_states_current_schema_version(service_md):
    from repro.experiments.results import SCHEMA_VERSION
    assert f"version `{SCHEMA_VERSION}`" in service_md, (
        "docs/service.md must state the current result-document "
        f"schema_version ({SCHEMA_VERSION})")


def test_service_doc_covers_document_fields(service_tokens):
    """The top-level field list in the doc tracks the real document."""
    import repro.api as api
    document = api.run_document(api.ScenarioSpec(num_ues=1, duration_s=0.2))
    for key in document:
        assert key in service_tokens, (
            f"document field {key!r} missing from docs/service.md")


def test_service_doc_covers_service_env_vars(service_tokens):
    from repro.service.archive import DEFAULT_RUNS_DIR, RUNS_DIR_ENV
    assert f"${RUNS_DIR_ENV}" in service_tokens
    assert DEFAULT_RUNS_DIR in service_tokens
    assert "REPRO_CORE_BUDGET" in service_tokens


def test_service_doc_notes_scenario_config_deprecation(service_md):
    assert "ScenarioConfig" in service_md
    assert "DeprecationWarning" in service_md


def test_documented_defaults_match_spec(scenarios_md):
    """Spot-check load-bearing defaults the doc states as values."""
    spec = spec_module.ScenarioSpec()
    assert f"`{spec.mobility.interruption_s:.3f}`" == "`0.020`"
    assert "`0.020`" in scenarios_md
    assert spec.mobility.ho_mode == "forward"
    assert spec.sharding.adaptive_windows is True


@pytest.fixture(scope="module")
def architecture_md() -> str:
    return (DOCS / "architecture.md").read_text(encoding="utf-8")


def test_architecture_doc_covers_every_invariant_suite(architecture_md):
    """The fuzzing section's suite table tracks INVARIANT_SUITES."""
    from repro.experiments.fuzz import INVARIANT_SUITES

    section = architecture_md.split("## Differential fuzzing", 1)[1]
    for name in INVARIANT_SUITES:
        assert f"`{name}`" in section, (
            f"invariant suite {name!r} is registered but missing from the "
            "Differential fuzzing section of docs/architecture.md")


def test_architecture_doc_covers_fuzz_workflow(architecture_md):
    """Campaign runner, minimizer and corpus policy are all documented."""
    section = architecture_md.split("## Differential fuzzing", 1)[1]
    for token in ("scripts/fuzz_specs.py", "--campaign", "--time-budget",
                  "--minimize", "tests/corpus/", "tests/test_corpus.py",
                  "failure_signature", "fuzz-nightly.yml",
                  "REPRO_CORE_BUDGET"):
        assert token in section, (
            f"{token!r} missing from the Differential fuzzing section of "
            "docs/architecture.md")


def test_readme_links_differential_fuzzing_section():
    readme = (DOCS.parent / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md#differential-fuzzing" in readme, (
        "README must link the Differential fuzzing section of "
        "docs/architecture.md")
