"""End-to-end tests for the scenario service (``repro serve``).

The service is booted on a real socket (port 0) and exercised over HTTP
with the stdlib client, since the byte-identity contract — CLI ``--json``,
the archive file and ``GET /runs/{id}/document`` all emit the same bytes —
is only meaningful across the real serialization boundaries.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.experiments.options import RuntimeOptions, apply_runtime_options
from repro.experiments.results import SCHEMA_VERSION, check_document
from repro.experiments.spec import ScenarioSpec
from repro.service import ScenarioService, spec_from_request


# --------------------------------------------------------------------- #
# HTTP helpers
# --------------------------------------------------------------------- #
def _get(service, path: str):
    with urllib.request.urlopen(f"{service.url}{path}") as response:
        return response.status, response.read().decode("utf-8")


def _get_json(service, path: str):
    status, body = _get(service, path)
    return status, json.loads(body)


def _post(service, payload):
    request = urllib.request.Request(
        f"{service.url}/runs", data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _wait_done(service, run_id: str, timeout_s: float = 60.0) -> dict:
    import time

    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        _, status = _get_json(service, f"/runs/{run_id}")
        if status["status"] in ("done", "failed"):
            return status
        time.sleep(0.05)
    raise AssertionError(f"run {run_id} did not settle within {timeout_s}s")


@pytest.fixture()
def service(tmp_path):
    instance = ScenarioService(port=0, runs_dir=str(tmp_path / "runs"))
    instance.start_background()
    yield instance
    instance.close()


# --------------------------------------------------------------------- #
# The byte-identity contract
# --------------------------------------------------------------------- #
class TestRoundTrip:
    def test_preset_roundtrip_matches_cli_json_bytes(self, service, capsys):
        """coupled-core over HTTP == coupled-core via ``scenario --json``,
        byte for byte, and the archived file is that same text."""
        from repro.__main__ import main

        assert main(["scenario", "--preset", "coupled-core", "--json"]) == 0
        cli_text = capsys.readouterr().out

        status, submitted = _post(service, {"preset": "coupled-core"})
        assert status == 202
        run_id = submitted["run_id"]
        final = _wait_done(service, run_id)
        assert final["status"] == "done"

        _, served_text = _get(service, f"/runs/{run_id}/document")
        archived_text = service.archive.read_document(run_id)
        assert served_text == cli_text
        assert archived_text == cli_text
        document = json.loads(served_text)
        check_document(document)
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["label"] == "coupled-core"

    def test_status_envelope_embeds_document_when_done(self, service):
        _, submitted = _post(
            service, {"spec": {"num_ues": 1, "duration_s": 0.3}})
        final = _wait_done(service, submitted["run_id"])
        assert final["status"] == "done"
        assert final["document"]["schema_version"] == SCHEMA_VERSION
        assert final["document"]["summary"]["total_goodput_mbps"] > 0

    def test_archive_query_by_preset_and_status(self, service):
        _, submitted = _post(service, {"preset": "coupled-core"})
        _wait_done(service, submitted["run_id"])
        _, listing = _get_json(service, "/runs?preset=coupled-core")
        assert listing["count"] >= 1
        entry = listing["runs"][-1]
        assert entry["status"] == "done"
        assert entry["label"] == "coupled-core"
        _, empty = _get_json(service, "/runs?preset=coupled-core&status=failed")
        assert empty["count"] == 0


# --------------------------------------------------------------------- #
# Shared runtime options: the flag-drift regression test
# --------------------------------------------------------------------- #
class TestRuntimeOptionParity:
    def test_cli_flags_and_service_overrides_build_identical_specs(
            self, capsys):
        """--engine/--shards/--shard-windows through ``repro scenario`` and
        through a POSTed ``overrides`` object must resolve to the same
        spec — the drift that motivated the shared argparse parent."""
        from repro.__main__ import main

        assert main(["scenario", "--preset", "coupled-core", "--shards", "2",
                     "--engine", "numpy", "--shard-windows", "fixed",
                     "--dump-spec"]) == 0
        cli_spec = ScenarioSpec.from_json(capsys.readouterr().out)

        service_spec, _ = spec_from_request(
            {"preset": "coupled-core",
             "overrides": {"shards": 2, "engine": "numpy",
                           "shard_windows": "fixed"}})
        assert service_spec == cli_spec

    def test_serve_level_defaults_yield_to_request_overrides(self):
        defaults = RuntimeOptions(engine="numpy", shards=4)
        spec, _ = spec_from_request(
            {"preset": "coupled-core", "overrides": {"shards": 2}}, defaults)
        assert spec.sharding.shards == 2
        assert spec.engine.backend == "numpy"

    def test_workers_flag_caps_shard_count(self):
        spec = apply_runtime_options(
            ScenarioSpec(), RuntimeOptions(shards=8, workers=3))
        assert spec.sharding.mode == "auto"
        assert spec.sharding.shards == 3

    def test_unknown_override_key_rejected(self):
        with pytest.raises(ValueError, match="unknown override"):
            RuntimeOptions.from_mapping({"shard": 2})


# --------------------------------------------------------------------- #
# Malformed submissions become 400s, not tracebacks
# --------------------------------------------------------------------- #
class TestBadRequests:
    @pytest.mark.parametrize("payload, fragment", [
        ([1, 2, 3], "JSON object"),
        ({}, "exactly one of 'preset' or 'spec'"),
        ({"preset": "coupled-core", "spec": {}},
         "exactly one of 'preset' or 'spec'"),
        ({"preset": "no-such-preset"}, "unknown preset"),
        ({"spec": {"num_uess": 3}}, "unknown field"),
        ({"spec": {"num_ues": 1, "cc_name": "vegas"}}, "congestion"),
        ({"spec": {"num_ues": 1}, "overrides": {"shards": "two"}},
         "integer"),
        ({"spec": {"num_ues": 1}, "overrides": {"engine": "fortran"}},
         "engine backend"),
        ({"bogus": 1}, "unknown request key"),
    ])
    def test_bad_payloads_return_400(self, service, payload, fragment):
        status, body = _post(service, payload)
        assert status == 400
        assert fragment in body["error"]

    def test_non_json_body_returns_400(self, service):
        request = urllib.request.Request(f"{service.url}/runs",
                                         data=b"{not json")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 400

    def test_unknown_run_and_route_return_404(self, service):
        for path in ("/runs/run-9999-nope", "/runs/run-9999-nope/document",
                     "/nonsense"):
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(f"{service.url}{path}")
            assert info.value.code == 404

    def test_unknown_query_parameter_rejected(self, service):
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(f"{service.url}/runs?colour=red")
        assert info.value.code == 400


# --------------------------------------------------------------------- #
# The live event stream
# --------------------------------------------------------------------- #
class TestEventStream:
    def _read_events(self, service, run_id: str) -> list[tuple[str, dict]]:
        events = []
        with urllib.request.urlopen(
                f"{service.url}/runs/{run_id}/events") as response:
            assert response.headers["Content-Type"] == "text/event-stream"
            for block in response.read().decode("utf-8").split("\n\n"):
                kind, data = None, None
                for line in block.splitlines():
                    if line.startswith("event: "):
                        kind = line[len("event: "):]
                    elif line.startswith("data: "):
                        data = json.loads(line[len("data: "):])
                if kind is not None:
                    events.append((kind, data))
        return events

    def test_snapshots_stream_in_order_and_terminate(self, service):
        _, submitted = _post(
            service, {"spec": {"num_ues": 1, "duration_s": 1.0}})
        run_id = submitted["run_id"]
        events = self._read_events(service, run_id)
        kinds = [kind for kind, _ in events]
        assert kinds[-1] == "end"
        snapshots = [data for kind, data in events if kind == "snapshot"]
        assert len(snapshots) >= 2
        times = [snapshot["time_s"] for snapshot in snapshots]
        assert times == sorted(times)
        assert len(set(times)) == len(times)
        assert all(snapshot["events"] > 0 for snapshot in snapshots)
        assert events[-1][1]["status"] == "done"

    def test_stream_replays_after_completion(self, service):
        _, submitted = _post(
            service, {"spec": {"num_ues": 1, "duration_s": 0.6}})
        run_id = submitted["run_id"]
        _wait_done(service, run_id)
        events = self._read_events(service, run_id)
        assert [kind for kind, _ in events].count("snapshot") >= 1
        assert events[-1][0] == "end"


# --------------------------------------------------------------------- #
# Concurrency under the core-budget arbiter
# --------------------------------------------------------------------- #
class TestConcurrency:
    def test_slots_clamped_by_core_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CORE_BUDGET", "2")
        instance = ScenarioService(port=0, runs_dir=str(tmp_path / "runs"),
                                   max_runs=8)
        try:
            assert instance.jobs.slots == 2
        finally:
            instance.close()

    def test_single_slot_serializes_concurrent_submissions(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CORE_BUDGET", "1")
        instance = ScenarioService(port=0, runs_dir=str(tmp_path / "runs"),
                                   max_runs=4)
        instance.start_background()
        try:
            assert instance.jobs.slots == 1
            run_ids = []
            for _ in range(3):
                _, submitted = _post(
                    instance, {"spec": {"num_ues": 1, "duration_s": 0.3}})
                run_ids.append(submitted["run_id"])
            for run_id in run_ids:
                assert _wait_done(instance, run_id)["status"] == "done"
            spans = {}
            for entry in instance.archive.entries():
                if entry["run_id"] in run_ids:
                    spans[entry["run_id"]] = (entry["started_at"],
                                              entry["finished_at"])
            assert len(spans) == 3
            ordered = sorted(spans.values())
            for (_, finished), (started, _) in zip(ordered, ordered[1:]):
                # One slot: the next run may not start before the previous
                # one finished.
                assert started >= finished
        finally:
            instance.close()


# --------------------------------------------------------------------- #
# Service metadata endpoints
# --------------------------------------------------------------------- #
class TestMetadata:
    def test_health_reports_schema_version_and_slots(self, service):
        status, health = _get_json(service, "/health")
        assert status == 200
        assert health["status"] == "ok"
        assert health["schema_version"] == SCHEMA_VERSION
        assert health["slots"] >= 1

    def test_schema_endpoint_serves_result_schema(self, service):
        from repro.experiments.results import result_schema

        _, served = _get_json(service, "/schema")
        assert served == result_schema()
