"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_pop_returns_events_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append(2))
        queue.push(1.0, lambda: fired.append(1))
        queue.push(3.0, lambda: fired.append(3))
        order = [queue.pop().time for _ in range(3)]
        assert order == [1.0, 2.0, 3.0]

    def test_same_time_events_fire_in_scheduling_order(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        second = queue.push(1.0, lambda: None)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        keeper = queue.push(2.0, lambda: None)
        event.cancel()
        assert queue.pop() is keeper

    def test_peek_time_ignores_cancelled_head(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 5.0

    def test_len_counts_pending(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2


class TestSimulator:
    def test_run_until_stops_clock_at_horizon(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_events_fire_at_their_scheduled_time(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run(until=2.0)
        assert times == [0.5, 1.5]

    def test_callbacks_receive_arguments(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.1, seen.append, "hello")
        sim.run()
        assert seen == ["hello"]

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(sim.now)
            if depth < 3:
                sim.schedule(1.0, chain, depth + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_stop_interrupts_run(self):
        sim = Simulator()
        sim.schedule(1.0, sim.stop)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.now == 1.0

    def test_max_events_limits_processing(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(i + 1.0, lambda: None)
        processed = sim.run(max_events=4)
        assert processed == 4

    def test_processed_events_accumulates(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None)
        sim.run()
        assert sim.processed_events == 2

    def test_processed_events_is_live_during_run(self):
        # Watchdog pattern: a callback must see the counter advance mid-run.
        sim = Simulator()
        seen = []

        def spin():
            seen.append(sim.processed_events)
            if sim.processed_events < 3:
                sim.schedule(1.0, spin)

        sim.schedule(1.0, spin)
        sim.run()
        # The counter increments after each callback returns, so the Nth
        # firing observes N-1 processed events.
        assert seen == [0, 1, 2, 3]

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run()
        assert times == [1.0]

    def test_peek_time_reports_next_live_event(self):
        sim = Simulator()
        assert sim.peek_time() is None
        doomed = sim.schedule(0.5, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.peek_time() == 0.5
        doomed.cancel()
        assert sim.peek_time() == 2.0
        assert sim.pending_events == 1

    def test_peek_time_between_windowed_runs(self):
        """The windowed execution pattern the sharded runtime uses."""
        sim = Simulator()
        fired = []
        sim.schedule(0.75, fired.append, "a")
        sim.run(until=0.5)
        assert sim.now == 0.5
        assert fired == []
        assert sim.peek_time() == 0.75
        sim.run(until=1.0)
        assert fired == ["a"]
        assert sim.peek_time() is None
