"""Tests for the TC-RAN and in-RAN DualPi2 baseline markers."""

from __future__ import annotations

from repro.core.factory import MARKER_NAMES, make_marker
from repro.core.l4span import L4SpanLayer
from repro.core.ran_dualpi2 import RanDualPi2Marker
from repro.core.tcran import TcRanMarker
from repro.net.ecn import ECN
from repro.net.packet import make_data_packet
from repro.ran.f1u import DeliveryStatus
from repro.ran.marker import NoopMarker
from repro.sim.engine import Simulator
from repro.units import ms
import pytest


def drive_marker(marker, five_tuple, packets=200, interval=0.001,
                 transmit_lag=80, ecn=ECN.ECT1):
    """Push packets through a marker with the RLC lagging ``transmit_lag`` behind."""
    marked = 0
    for i in range(packets):
        now = i * interval
        packet = make_data_packet(0, five_tuple, i * 1440, 1400, ecn, now)
        marker.on_downlink_packet(packet, 0, 1, now)
        if i >= transmit_lag:
            marker.on_ran_feedback(DeliveryStatus(0, 1, i - transmit_lag, None,
                                                  now), now)
        marked += packet.ecn == ECN.CE
    return marked


class TestTcRan:
    def test_persistent_sojourn_triggers_marking(self, sim, five_tuple):
        marker = TcRanMarker(sim, target=ms(5), interval=ms(20))
        marked = drive_marker(marker, five_tuple, transmit_lag=80)
        assert marker.marked_packets > 0
        assert marked == marker.marked_packets

    def test_low_sojourn_never_marks(self, sim, five_tuple):
        marker = TcRanMarker(sim, target=ms(5), interval=ms(20))
        marked = drive_marker(marker, five_tuple, transmit_lag=1)
        assert marked == 0

    def test_not_ect_packets_never_marked(self, sim, five_tuple):
        marker = TcRanMarker(sim, target=ms(5), interval=ms(20))
        marked = drive_marker(marker, five_tuple, transmit_lag=80,
                              ecn=ECN.NOT_ECT)
        assert marked == 0

    def test_marking_stops_when_queue_drains(self, sim, five_tuple):
        marker = TcRanMarker(sim, target=ms(5), interval=ms(20))
        drive_marker(marker, five_tuple, transmit_lag=80)
        state = marker._drbs[next(iter(marker._drbs))]
        # Simulate the queue having drained: the measured sojourn collapses and
        # the next (duplicate) report carries no newly-transmitted packets.
        state.recent_sojourn = 0.0
        already_reported = state.profile.highest_txed_sn
        marker.on_ran_feedback(DeliveryStatus(0, 1, already_reported, None,
                                              1.0), 1.0)
        assert not state.marking


class TestRanDualPi2:
    def test_deep_queue_marks_l4s_packets(self, sim, five_tuple):
        marker = RanDualPi2Marker(sim, l4s_threshold=ms(1))
        marked = drive_marker(marker, five_tuple, transmit_lag=80)
        assert marked > 0

    def test_threshold_10ms_marks_less_than_1ms(self, five_tuple):
        marked_1ms = drive_marker(RanDualPi2Marker(Simulator(seed=1),
                                                   l4s_threshold=ms(1)),
                                  five_tuple, transmit_lag=20)
        marked_10ms = drive_marker(RanDualPi2Marker(Simulator(seed=1),
                                                    l4s_threshold=ms(10)),
                                   five_tuple, transmit_lag=20)
        assert marked_10ms <= marked_1ms

    def test_classic_marking_driven_by_pi_controller(self, sim, five_tuple):
        marker = RanDualPi2Marker(sim, l4s_threshold=ms(1))
        marked = drive_marker(marker, five_tuple, packets=2000,
                              transmit_lag=800, ecn=ECN.ECT0)
        state = marker._drbs[next(iter(marker._drbs))]
        # The PI controller must have reacted to the persistent sojourn, and
        # with a long enough run its squared probability produces marks.
        assert state.core.p_prime > 0
        assert marked > 0


class TestMarkerFactory:
    def test_all_names_construct(self, sim):
        for name in MARKER_NAMES:
            marker = make_marker(name, sim)
            assert hasattr(marker, "on_downlink_packet")

    def test_none_gives_noop(self, sim):
        assert isinstance(make_marker("none", sim), NoopMarker)

    def test_l4span_gives_layer(self, sim):
        assert isinstance(make_marker("l4span", sim), L4SpanLayer)

    def test_unknown_rejected(self, sim):
        with pytest.raises(KeyError):
            make_marker("magic", sim)
