"""Tests for the AQM algorithms (CoDel, DualPi2 core, step marker)."""

from __future__ import annotations

import pytest

from repro.aqm.base import PassthroughAQM, sojourn_time
from repro.aqm.codel import CoDel, EcnCoDel
from repro.aqm.dualpi2 import DualPi2Core, DualPi2Router
from repro.aqm.step import StepMarker
from repro.net.base import CollectorSink
from repro.net.ecn import ECN
from repro.net.packet import make_data_packet
from repro.net.queueing import DropTailQueue
from repro.sim.engine import Simulator
from repro.units import mbps, ms


def _packet(five_tuple, ecn=ECN.ECT1, enqueue_time=None, payload=1000):
    packet = make_data_packet(0, five_tuple, 0, payload, ecn, 0.0)
    if enqueue_time is not None:
        packet.stamp("link_enqueue", enqueue_time)
    return packet


class TestSojournHelpers:
    def test_sojourn_time_from_stamp(self, five_tuple):
        packet = _packet(five_tuple, enqueue_time=1.0)
        assert sojourn_time(packet, 1.3) == pytest.approx(0.3)

    def test_missing_stamp_gives_zero(self, five_tuple):
        assert sojourn_time(_packet(five_tuple), 5.0) == 0.0

    def test_passthrough_counts(self, five_tuple):
        aqm = PassthroughAQM()
        queue = DropTailQueue()
        aqm.on_enqueue(_packet(five_tuple), queue, 0.0)
        aqm.on_dequeue(_packet(five_tuple), queue, 0.0)
        assert aqm.enqueued == 1 and aqm.dequeued == 1


class TestStepMarker:
    def test_marks_above_threshold(self, five_tuple):
        marker = StepMarker(threshold=ms(1))
        queue = DropTailQueue()
        packet = _packet(five_tuple, enqueue_time=0.0)
        marker.on_dequeue(packet, queue, now=0.005)
        assert packet.ecn == ECN.CE

    def test_no_mark_below_threshold(self, five_tuple):
        marker = StepMarker(threshold=ms(10))
        packet = _packet(five_tuple, enqueue_time=0.0)
        marker.on_dequeue(packet, DropTailQueue(), now=0.005)
        assert packet.ecn == ECN.ECT1

    def test_probability_is_step(self):
        marker = StepMarker(threshold=ms(10))
        assert marker.mark_probability(0.005) == 0.0
        assert marker.mark_probability(0.015) == 1.0


class TestCoDel:
    def _run_persistent_queue(self, aqm, five_tuple, sojourn=0.05,
                              packets=60, spacing=0.01):
        """Dequeue a long series of packets that all waited ``sojourn``."""
        queue = DropTailQueue()
        for _ in range(5):
            queue.enqueue(_packet(five_tuple))
        outcomes = []
        for i in range(packets):
            now = i * spacing
            packet = _packet(five_tuple, enqueue_time=now - sojourn)
            outcomes.append((packet, aqm.on_dequeue(packet, queue, now)))
        return outcomes

    def test_persistent_delay_triggers_drops(self, five_tuple):
        codel = CoDel(target=ms(5), interval=ms(100))
        outcomes = self._run_persistent_queue(codel, five_tuple)
        assert codel.dropped > 0
        assert any(keep is False for _, keep in outcomes)

    def test_ecn_variant_marks_instead_of_dropping(self, five_tuple):
        codel = EcnCoDel(target=ms(5), interval=ms(100))
        outcomes = self._run_persistent_queue(codel, five_tuple)
        assert codel.marked > 0
        assert codel.dropped == 0
        assert all(keep is not False for _, keep in outcomes)
        assert any(packet.ecn == ECN.CE for packet, _ in outcomes)

    def test_short_delays_never_act(self, five_tuple):
        codel = CoDel(target=ms(5), interval=ms(100))
        outcomes = self._run_persistent_queue(codel, five_tuple,
                                              sojourn=0.001)
        assert codel.dropped == 0
        assert all(keep is not False for _, keep in outcomes)

    def test_marking_rate_increases_over_time(self, five_tuple):
        codel = EcnCoDel(target=ms(5), interval=ms(100))
        self._run_persistent_queue(codel, five_tuple, packets=200)
        assert codel.count > 2


class TestDualPi2Core:
    def test_probability_rises_with_persistent_delay(self):
        core = DualPi2Core(target=ms(15))
        for _ in range(50):
            core.update(classic_delay=0.05)
        assert core.p_prime > 0
        assert core.p_classic <= core.p_prime  # p^2 <= p for p in [0, 1]

    def test_probability_decays_when_delay_clears(self):
        core = DualPi2Core(target=ms(15))
        for _ in range(50):
            core.update(classic_delay=0.05)
        high = core.p_prime
        for _ in range(200):
            core.update(classic_delay=0.0)
        assert core.p_prime < high

    def test_coupled_probability_scales_with_coupling(self):
        core = DualPi2Core(coupling=2.0)
        core.p_prime = 0.1
        assert core.p_coupled == 0.2

    def test_l4s_step_dominates_when_queue_deep(self):
        core = DualPi2Core(l4s_threshold=ms(1))
        assert core.l4s_mark_probability(0.002) == 1.0
        assert core.l4s_mark_probability(0.0005) == core.p_coupled


class TestDualPi2Router:
    def test_l4s_and_classic_go_to_separate_queues(self, five_tuple):
        sim = Simulator(seed=1)
        router = DualPi2Router(sim, rate=mbps(10), sink=CollectorSink())
        router.receive(_packet(five_tuple, ecn=ECN.ECT1))
        router.receive(_packet(five_tuple, ecn=ECN.ECT0))
        # One of them is already being serialised; the other waits in its queue.
        assert router.l_queue.enqueued_packets == 1
        assert router.c_queue.enqueued_packets == 1
        router.stop()

    def test_all_packets_eventually_forwarded(self, five_tuple):
        sim = Simulator(seed=1)
        sink = CollectorSink()
        router = DualPi2Router(sim, rate=mbps(10), sink=sink)
        for i in range(20):
            ecn = ECN.ECT1 if i % 2 else ECN.ECT0
            router.receive(_packet(five_tuple, ecn=ecn))
        sim.run(until=2.0)
        router.stop()
        assert len(sink) == 20

    def test_sustained_overload_marks_l4s_packets(self, five_tuple):
        sim = Simulator(seed=1)
        sink = CollectorSink()
        router = DualPi2Router(sim, rate=mbps(2), sink=sink)

        def offer(i=0):
            router.receive(_packet(five_tuple, ecn=ECN.ECT1, payload=1200))
            if sim.now < 1.5:
                sim.schedule(0.002, offer)  # ~5 Mbit/s offered into 2 Mbit/s

        offer()
        sim.run(until=2.0)
        router.stop()
        assert router.marked_l4s > 0
