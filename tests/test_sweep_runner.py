"""Tests for the parallel sweep runner and its experiment integrations."""

from __future__ import annotations

import json

import pytest

from repro.experiments.fig09_tcp_sweep import (SweepConfig, run_fig9,
                                               sweep_cells)
from repro.experiments.runner import (SweepRunner, derive_cell_seed,
                                      run_cells)


# --------------------------------------------------------------------------- #
# Module-level cell functions (must be picklable for worker processes)
# --------------------------------------------------------------------------- #
def square_cell(cell):
    return cell * cell


def seeded_cell(cell, seed):
    return (cell, seed)


def failing_cell(cell):
    if cell == 2:
        raise ValueError("cell 2 exploded")
    return cell


def os_error_cell(cell):
    raise FileNotFoundError(f"cell {cell} lost its trace file")


def active_workers_cell(cell):
    from repro.experiments.runner import active_sweep_workers
    return (cell, active_sweep_workers())


class TestSweepRunner:
    def test_sequential_results_in_input_order(self):
        assert SweepRunner(workers=1).map(square_cell, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_results_in_input_order(self):
        cells = list(range(10))
        assert SweepRunner(workers=4).map(square_cell, cells) == \
            [c * c for c in cells]

    def test_empty_grid(self):
        assert SweepRunner(workers=4).map(square_cell, []) == []

    def test_run_alias(self):
        assert SweepRunner(workers=1).run(square_cell, [2]) == [4]

    def test_master_seed_derives_per_cell_seeds(self):
        results = SweepRunner(workers=1, master_seed=7).map(
            seeded_cell, ["a", "b"])
        assert results == [("a", derive_cell_seed(7, 0)),
                           ("b", derive_cell_seed(7, 1))]

    def test_derived_seeds_independent_of_worker_count(self):
        seq = SweepRunner(workers=1, master_seed=13).map(seeded_cell,
                                                         list(range(6)))
        par = SweepRunner(workers=3, master_seed=13).map(seeded_cell,
                                                         list(range(6)))
        assert seq == par

    def test_derive_cell_seed_decorrelates(self):
        seeds = {derive_cell_seed(1, i) for i in range(100)}
        assert len(seeds) == 100
        assert derive_cell_seed(1, 0) != derive_cell_seed(2, 0)

    def test_progress_callback_reaches_total(self):
        seen = []
        SweepRunner(workers=1, progress=lambda d, t: seen.append((d, t))).map(
            square_cell, [1, 2, 3])
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_parallel_progress_counts_every_cell(self):
        seen = []
        SweepRunner(workers=2, progress=lambda d, t: seen.append((d, t))).map(
            square_cell, list(range(5)))
        assert seen[-1] == (5, 5)
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="cell 2 exploded"):
            SweepRunner(workers=2).map(failing_cell, [0, 1, 2, 3])
        with pytest.raises(ValueError, match="cell 2 exploded"):
            SweepRunner(workers=1).map(failing_cell, [0, 1, 2, 3])

    def test_pool_failure_falls_back_to_sequential(self, monkeypatch):
        import repro.experiments.runner as runner_module

        def broken_pool(*_args, **_kwargs):
            raise OSError("no semaphores on this platform")

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", broken_pool)
        with pytest.warns(RuntimeWarning, match="re-running all 3 cells"):
            assert SweepRunner(workers=4).map(square_cell, [1, 2, 3]) == \
                [1, 4, 9]

    def test_cell_os_error_is_not_swallowed_by_fallback(self):
        # An OSError raised by the cell function must propagate, not be
        # misread as "platform cannot host a process pool" (which would
        # silently re-run the whole grid sequentially).
        with pytest.raises(FileNotFoundError, match="lost its trace file"):
            SweepRunner(workers=2).map(os_error_cell, [0, 1])

    def test_run_cells_convenience(self):
        assert run_cells(square_cell, [4], workers=1) == [16]


# --------------------------------------------------------------------------- #
# Core budget: sweep workers x scenario shards must fit one host
# --------------------------------------------------------------------------- #
class TestCoreBudget:
    def test_env_override_and_fallback(self, monkeypatch):
        import os

        from repro.experiments.runner import (ACTIVE_WORKERS_ENV,
                                              CORE_BUDGET_ENV,
                                              active_sweep_workers,
                                              core_budget)
        monkeypatch.setenv(CORE_BUDGET_ENV, "3")
        assert core_budget() == 3
        monkeypatch.setenv(CORE_BUDGET_ENV, "not-a-number")
        assert core_budget() == (os.cpu_count() or 1)
        monkeypatch.delenv(CORE_BUDGET_ENV, raising=False)
        assert core_budget() == (os.cpu_count() or 1)
        monkeypatch.delenv(ACTIVE_WORKERS_ENV, raising=False)
        assert active_sweep_workers() == 1

    def test_sweep_workers_clamped_to_budget(self, monkeypatch):
        from repro.experiments.runner import CORE_BUDGET_ENV
        monkeypatch.setenv(CORE_BUDGET_ENV, "2")
        cells = list(range(6))
        with pytest.warns(RuntimeWarning, match="core budget"):
            results = SweepRunner(workers=4).map(square_cell, cells)
        assert results == [c * c for c in cells]

    def test_parallel_sweep_exports_active_workers(self, monkeypatch):
        from repro.experiments.runner import ACTIVE_WORKERS_ENV
        monkeypatch.delenv(ACTIVE_WORKERS_ENV, raising=False)
        SweepRunner(workers=2).map(active_workers_cell, [0, 1, 2])
        # The export is cleaned up after the sweep finishes.
        import os
        assert ACTIVE_WORKERS_ENV not in os.environ

    def test_shard_plan_clamped_under_active_sweep(self, monkeypatch):
        from repro.experiments.runner import (ACTIVE_WORKERS_ENV,
                                              CORE_BUDGET_ENV)
        from repro.experiments.sharded import build_shard_plan
        from repro.experiments.spec import (CellSpec, ScenarioSpec,
                                            ShardingSpec, UeSpec)
        spec = ScenarioSpec(
            num_ues=0, channel_profile="static",
            cells=[CellSpec(cell_id=c) for c in range(4)],
            ues=[UeSpec(ue_id=u, cell_id=u) for u in range(4)],
            sharding=ShardingSpec(mode="auto")).validate()
        # Outside a sweep, no clamp: 4 shards stay 4 shards.
        monkeypatch.delenv(ACTIVE_WORKERS_ENV, raising=False)
        monkeypatch.setenv(CORE_BUDGET_ENV, "4")
        assert build_shard_plan(spec, shards=4).num_shards == 4
        # Inside a 2-worker sweep, 4 shards exceed the budget of 4 cores.
        monkeypatch.setenv(ACTIVE_WORKERS_ENV, "2")
        with pytest.warns(RuntimeWarning, match="core budget"):
            plan = build_shard_plan(spec, shards=4)
        assert plan.num_shards == 2
        assert set(plan.assignment.values()) == {0, 1}

    def test_explicit_shard_map_warns_without_clamping(self, monkeypatch):
        from repro.experiments.runner import (ACTIVE_WORKERS_ENV,
                                              CORE_BUDGET_ENV)
        from repro.experiments.sharded import build_shard_plan
        from repro.experiments.spec import (CellSpec, ScenarioSpec,
                                            ShardingSpec, UeSpec)
        spec = ScenarioSpec(
            num_ues=0, channel_profile="static",
            cells=[CellSpec(cell_id=0), CellSpec(cell_id=1)],
            ues=[UeSpec(ue_id=0, cell_id=0), UeSpec(ue_id=1, cell_id=1)],
            sharding=ShardingSpec(mode="explicit",
                                  map={0: 0, 1: 1})).validate()
        monkeypatch.setenv(CORE_BUDGET_ENV, "2")
        monkeypatch.setenv(ACTIVE_WORKERS_ENV, "2")
        with pytest.warns(RuntimeWarning, match="core budget"):
            plan = build_shard_plan(spec)
        assert plan.num_shards == 2  # the requested placement is kept


# --------------------------------------------------------------------------- #
# Determinism regression: parallel sweeps must be bit-identical to sequential
# --------------------------------------------------------------------------- #
MINI_SWEEP = SweepConfig(cc_names=("prague",), channels=("static", "mobile"),
                         duration_s=1.0, seed=11)


class TestSweepDeterminism:
    def test_fig9_rows_identical_across_worker_counts(self):
        sequential = run_fig9(MINI_SWEEP, workers=1)
        parallel = run_fig9(MINI_SWEEP, workers=4)
        seq_rows = json.dumps([c.as_row() for c in sequential], sort_keys=True)
        par_rows = json.dumps([c.as_row() for c in parallel], sort_keys=True)
        assert seq_rows == par_rows

    def test_fig9_grid_order_preserved(self):
        cells = sweep_cells(MINI_SWEEP)
        results = run_fig9(MINI_SWEEP, workers=4)
        assert [(r.cc_name, r.channel, r.marker) for r in results] == \
            [(c["cc_name"], c["channel_profile"], c["marker"])
             for c in cells]

    def test_fig9_cells_are_picklable_spec_dicts(self):
        import pickle

        from repro.experiments.spec import ScenarioSpec

        cells = sweep_cells(MINI_SWEEP)
        for cell in cells:
            assert isinstance(cell, dict)
            restored = ScenarioSpec.from_dict(pickle.loads(pickle.dumps(cell)))
            assert restored.to_dict() == cell
