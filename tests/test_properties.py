"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.egress import EgressRateEstimator
from repro.core.marking import (classic_mark_probability,
                                coupled_l4s_probability, l4s_mark_probability,
                                tcp_model_constant)
from repro.core.profile_table import DrbProfile
from repro.metrics.stats import box_stats, cdf_points
from repro.net.checksum import internet_checksum, verify_checksum
from repro.net.ecn import ECN
from repro.net.packet import AccEcnCounters
from repro.net.queueing import DropTailQueue
from repro.net.packet import make_data_packet
from repro.net.addresses import FiveTuple
from repro.sim.events import EventQueue


# --------------------------------------------------------------------------- #
# Marking probabilities
# --------------------------------------------------------------------------- #
@given(queued=st.floats(0, 1e8), rate=st.floats(0, 1e8),
       error=st.floats(0, 1e8), threshold=st.floats(1e-4, 1.0))
def test_l4s_probability_always_in_unit_interval(queued, rate, error,
                                                 threshold):
    p = l4s_mark_probability(queued, rate, error, threshold)
    assert 0.0 <= p <= 1.0


@given(rate=st.floats(1e3, 1e8), error=st.floats(0, 1e7),
       threshold=st.floats(1e-3, 0.1),
       q1=st.floats(0, 1e7), q2=st.floats(0, 1e7))
def test_l4s_probability_monotone_in_queue(rate, error, threshold, q1, q2):
    low, high = sorted((q1, q2))
    assert l4s_mark_probability(low, rate, error, threshold) <= \
        l4s_mark_probability(high, rate, error, threshold) + 1e-12


@given(mss=st.floats(100, 9000), rtt=st.floats(1e-3, 2.0),
       rate=st.floats(1e3, 1e9), beta=st.floats(0.05, 0.95))
def test_classic_probability_bounded_and_decreasing_in_rate(mss, rtt, rate,
                                                            beta):
    p = classic_mark_probability(mss, rtt, rate, beta)
    p_faster = classic_mark_probability(mss, rtt, rate * 2, beta)
    assert 0.0 <= p <= 1.0
    assert p_faster <= p + 1e-12


@given(p_classic=st.floats(0, 1), beta=st.floats(0.05, 0.95))
def test_coupled_probability_bounded(p_classic, beta):
    assert 0.0 <= coupled_l4s_probability(p_classic, beta) <= 1.0


@given(beta=st.floats(0.05, 0.95))
def test_tcp_model_constant_positive(beta):
    assert tcp_model_constant(beta) > 0


# --------------------------------------------------------------------------- #
# Profile table
# --------------------------------------------------------------------------- #
@given(sizes=st.lists(st.integers(40, 9000), min_size=1, max_size=60),
       txed_fraction=st.floats(0, 1))
def test_profile_queued_bytes_matches_untransmitted_sum(sizes, txed_fraction):
    profile = DrbProfile()
    for i, size in enumerate(sizes):
        profile.add_packet(size, i * 0.001)
    highest = int(len(sizes) * txed_fraction) - 1
    if highest >= 0:
        profile.on_feedback(highest, None, 1.0)
    expected = sum(sizes[highest + 1:]) if highest >= 0 else sum(sizes)
    assert profile.queued_bytes == expected
    assert profile.queued_packets == len(sizes) - (highest + 1)


@given(sizes=st.lists(st.integers(40, 9000), min_size=1, max_size=60),
       feedback_points=st.lists(st.integers(0, 59), min_size=1, max_size=10))
def test_profile_feedback_idempotent_and_monotone(sizes, feedback_points):
    profile = DrbProfile()
    for i, size in enumerate(sizes):
        profile.add_packet(size, i * 0.001)
    transmitted = set()
    for point in feedback_points:
        highest = min(point, len(sizes) - 1)
        newly = profile.on_feedback(highest, None, 1.0)
        new_sns = {e.sn for e in newly}
        assert not (new_sns & transmitted), "an SN was reported twice"
        transmitted |= new_sns
    assert profile.queued_bytes >= 0


# --------------------------------------------------------------------------- #
# Egress estimator
# --------------------------------------------------------------------------- #
class _Entry:
    def __init__(self, transmitted_time, size):
        self.transmitted_time = transmitted_time
        self.size = size


@given(sizes=st.lists(st.integers(100, 3000), min_size=2, max_size=80),
       interval=st.floats(1e-4, 5e-3))
@settings(max_examples=50)
def test_egress_estimate_never_negative_and_bounded(sizes, interval):
    estimator = EgressRateEstimator(window=0.01245)
    peak = max(sizes) / interval
    for i, size in enumerate(sizes):
        estimator.observe_transmissions([_Entry((i + 1) * interval, size)])
    estimate = estimator.last_estimate
    assert estimate.smoothed_rate >= 0
    assert estimate.error_std >= 0
    # A window of length W over packets spaced interval apart can contain
    # floor(W/interval) + 1 of them, so the instantaneous rate (and hence
    # the smoothed average of such rates) is bounded by
    # max_size * (floor(W/interval) + 1) / W <= peak * (1 + interval / W).
    assert estimate.smoothed_rate <= peak * (1 + interval / estimator.window) \
        * (1 + 1e-9)


# --------------------------------------------------------------------------- #
# Packet / checksum / counters
# --------------------------------------------------------------------------- #
@given(data=st.binary(min_size=0, max_size=200))
def test_internet_checksum_verifies_own_output(data):
    assert verify_checksum(data, internet_checksum(data))


@given(payloads=st.lists(st.tuples(st.integers(40, 2000),
                                   st.sampled_from(list(ECN))),
                         max_size=50))
def test_accecn_counters_are_consistent(payloads):
    counters = AccEcnCounters()
    for size, ecn in payloads:
        counters.add_packet(size, ecn)
    ce_total = sum(size for size, ecn in payloads if ecn == ECN.CE)
    assert counters.ce_bytes == ce_total
    assert counters.ce_packets == sum(1 for _, ecn in payloads
                                      if ecn == ECN.CE)
    assert counters.ect1_bytes + counters.ect0_bytes + counters.ce_bytes <= \
        sum(size for size, _ in payloads)


# --------------------------------------------------------------------------- #
# Queue and event-queue invariants
# --------------------------------------------------------------------------- #
@given(payloads=st.lists(st.integers(1, 5000), max_size=60),
       max_bytes=st.integers(1000, 50_000))
def test_droptail_byte_accounting_invariant(payloads, max_bytes):
    queue = DropTailQueue(max_bytes=max_bytes)
    five_tuple = FiveTuple("a", 1, "b", 2)
    accepted_bytes = 0
    for i, payload in enumerate(payloads):
        packet = make_data_packet(0, five_tuple, i, payload, ECN.ECT0, 0.0)
        if queue.enqueue(packet):
            accepted_bytes += packet.size
    assert queue.bytes == accepted_bytes
    assert queue.bytes <= max_bytes
    drained = 0
    while queue.dequeue() is not None:
        drained += 1
    assert queue.bytes == 0
    assert drained == queue.enqueued_packets


@given(times=st.lists(st.floats(0, 1000), max_size=80))
def test_event_queue_pops_in_nondecreasing_time_order(times):
    queue = EventQueue()
    for t in times:
        queue.push(t, lambda: None)
    popped = []
    while True:
        event = queue.pop()
        if event is None:
            break
        popped.append(event.time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)


@given(times=st.lists(st.floats(0, 1000), max_size=80),
       cancel_mask=st.lists(st.booleans(), max_size=80))
def test_event_queue_cancellation_preserves_order_of_survivors(times,
                                                               cancel_mask):
    queue = EventQueue()
    events = [queue.push(t, lambda: None) for t in times]
    for event, do_cancel in zip(events, cancel_mask):
        if do_cancel:
            event.cancel()
    survivors = sorted((e for e in events if not e.cancelled),
                       key=lambda e: (e.time, e.sequence))
    popped = []
    while True:
        event = queue.pop()
        if event is None:
            break
        popped.append(event)
    assert popped == survivors


@given(times=st.lists(st.sampled_from([0.0, 1.0, 2.0]), max_size=60))
def test_event_queue_ties_break_in_scheduling_order(times):
    queue = EventQueue()
    events = [queue.push(t, lambda: None) for t in times]
    expected = sorted(events, key=lambda e: (e.time, e.sequence))
    popped = []
    while True:
        event = queue.pop()
        if event is None:
            break
        popped.append(event)
    assert popped == expected
    # Sequence numbers within a tie must reflect scheduling order.
    for earlier, later in zip(popped, popped[1:]):
        if earlier.time == later.time:
            assert earlier.sequence < later.sequence


@given(times=st.lists(st.floats(0, 100), max_size=40),
       cancel_mask=st.lists(st.booleans(), max_size=40))
def test_event_queue_peek_time_matches_next_pop(times, cancel_mask):
    queue = EventQueue()
    events = [queue.push(t, lambda: None) for t in times]
    for event, do_cancel in zip(events, cancel_mask):
        if do_cancel:
            event.cancel()
    while True:
        peeked = queue.peek_time()
        event = queue.pop_pending()
        if event is None:
            assert peeked is None
            break
        assert peeked == event.time


# --------------------------------------------------------------------------- #
# Statistics
# --------------------------------------------------------------------------- #
@given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
def test_box_stats_ordering(values):
    stats = box_stats(values)
    assert stats.p10 <= stats.p25 <= stats.median <= stats.p75 <= stats.p90
    assert min(values) <= stats.median <= max(values)


@given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
def test_cdf_is_monotone(values):
    points = cdf_points(values)
    xs = [x for x, _ in points]
    fs = [f for _, f in points]
    assert xs == sorted(xs)
    assert fs == sorted(fs)
    assert fs[-1] == 1.0
