"""Property-based scenario fuzzing of the coupled-topology shard barrier.

Hypothesis drives :func:`repro.experiments.fuzz.random_spec` through integer
seeds; every drawn spec must hold the fuzz invariants (byte/packet
conservation, sharded ≡ single loop on static channels, determinism across
repeats, no ``ConservativeSyncError``).  ``scripts/fuzz_specs.py`` replays
the same generator over fixed seeds for the CI smoke job.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.fuzz import check_spec, random_spec


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_fuzzed_specs_hold_every_invariant(seed):
    """Conservation, shard equivalence, determinism — for any drawn spec."""
    spec = random_spec(random.Random(seed))
    assert check_spec(spec) == []


@given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_random_spec_is_seed_reproducible(seed):
    """The same seed draws the same spec, byte for byte."""
    assert random_spec(random.Random(seed)) == random_spec(random.Random(seed))


#: Axis suffixes random_spec appends after the coupling mode.
_AXES = {"fading", "pop", "wrap", "stall", "np"}


def _coupling_of(name: str) -> str:
    parts = name.removeprefix("fuzz-").split("+")
    while parts and parts[-1] in _AXES:
        parts.pop()
    return "+".join(parts)


def test_generator_covers_every_coupling_mode():
    """A modest seed sweep reaches all five coupling modes."""
    names = {random_spec(random.Random(seed)).name for seed in range(40)}
    assert {_coupling_of(name) for name in names} == {
        "plain", "mbx", "snr", "mbx+snr", "short-ho"}


def test_generator_covers_every_axis():
    """The same sweep also draws every orthogonal spec axis at least once
    (fading channels, population blocks, wrapped addresses, zero-rate
    stalls, the vectorized backend)."""
    names = [random_spec(random.Random(seed)).name for seed in range(40)]
    drawn = {axis for name in names
             for axis in name.removeprefix("fuzz-").split("+")
             if axis in _AXES}
    assert drawn == _AXES, f"axes never drawn: {_AXES - drawn}"


def test_check_spec_reports_instead_of_raising():
    """A spec with a sharding blocker is reported as a violation list —
    fuzz campaigns must see every failure, not stop at the first."""
    spec = random_spec(random.Random(0))
    import dataclasses

    from repro.experiments.spec import CellSpec, UeSpec
    lone = dataclasses.replace(
        spec, cells=[CellSpec(cell_id=0)],
        ues=[UeSpec(ue_id=0, cell_id=0)], flows=spec.flows[:1],
        mobility=dataclasses.replace(spec.mobility, mode="off",
                                     handovers=[]))
    violations = check_spec(lone)
    assert violations and "blocker" in violations[0]
